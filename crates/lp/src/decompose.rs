//! Connected-component decomposition and parallel block solve.
//!
//! The placement LPs APPLE generates are *nearly* block-diagonal: the
//! per-class chain-order and coverage rows (Eq. 2–4) never couple classes,
//! and most of the coupling rows (host resources, capacity caps) are
//! provably slack at every feasible point. This module turns that structure
//! into wall-clock wins in three exact steps:
//!
//! 1. [`strip_forced_slack_rows`] drops every inequality row whose
//!    left-hand side, maximised (resp. minimised) over the variable bound
//!    box, cannot reach the right-hand side — such a row is satisfied by
//!    *every* point in the box, so removing it changes neither the feasible
//!    set nor the optimum (its dual is 0).
//! 2. [`Decomposition::of`] runs a union–find pass over the
//!    variable/constraint incidence graph: variables sharing a row join one
//!    component, each component becomes an independent sub-[`Model`]
//!    (*block*), and variables appearing in no row are *pinned* analytically
//!    to the bound their objective coefficient favours.
//! 3. [`Decomposition::solve`] solves the blocks concurrently on a
//!    [`std::thread::scope`] worker pool and merges the block optima back
//!    into the original variable space. Independence makes the merge exact:
//!    the union of block optima is an optimum of the whole model, and the
//!    merged duals (block duals where kept, 0 for stripped rows) certify it.
//!
//! A [`WarmCache`] keyed by a structural fingerprint of each block lets
//! re-solves skip every block the caller did not touch — the Dynamic
//! Handler's post-crash re-solves and the engine's consolidation descent
//! re-solve models that differ from the previous call in a handful of rows,
//! so most blocks hit.
//!
//! [`solve_decomposed`] bundles the three steps (strip → split → solve) and
//! is the entry point the Optimization Engine uses.
//!
//! # Example
//!
//! ```
//! use apple_lp::{Cmp, Model, Sense};
//! use apple_lp::decompose::{solve_decomposed, DecomposeOptions, WarmCache};
//!
//! // Two independent sub-problems in one model.
//! let mut m = Model::new(Sense::Min);
//! let x = m.add_var("x", 0.0, 10.0, 1.0);
//! let y = m.add_var("y", 0.0, 10.0, 2.0);
//! m.add_constraint([(x, 1.0)], Cmp::Ge, 3.0)?;
//! m.add_constraint([(y, 1.0)], Cmp::Ge, 4.0)?;
//! let mut cache = WarmCache::default();
//! let (sol, stats) = solve_decomposed(&m, &DecomposeOptions::default(), Some(&mut cache))?;
//! assert_eq!(stats.blocks, 2);
//! assert!((sol.objective() - 11.0).abs() < 1e-9);
//! // A second solve of the same model hits the cache for every block.
//! let (_, stats2) = solve_decomposed(&m, &DecomposeOptions::default(), Some(&mut cache))?;
//! assert_eq!(stats2.warm_hits, 2);
//! # Ok::<(), apple_lp::LpError>(())
//! ```

use crate::model::{Cmp, Model, Sense, Var};
use crate::simplex::SimplexOptions;
use crate::solution::{LpError, Solution, SolveStats};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Tuning knobs for the decomposed solve.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecomposeOptions {
    /// Options forwarded to each block's simplex run.
    pub simplex: SimplexOptions,
    /// Worker threads for block solves; `0` means one per available CPU
    /// (never more than the number of blocks to solve).
    pub threads: usize,
}

/// Outcome statistics of one decomposed solve.
#[derive(Debug, Clone, Default)]
pub struct DecomposedStats {
    /// Number of independent blocks (after stripping).
    pub blocks: usize,
    /// Variables in the largest block.
    pub largest_block_vars: usize,
    /// Rows in the largest block.
    pub largest_block_rows: usize,
    /// Inequality rows dropped by [`strip_forced_slack_rows`].
    pub dropped_rows: usize,
    /// Variables pinned analytically (no row references them).
    pub pinned_vars: usize,
    /// Blocks answered from the [`WarmCache`].
    pub warm_hits: usize,
    /// Blocks actually solved this call.
    pub warm_misses: usize,
    /// Simplex pivots summed over solved blocks.
    pub pivots: usize,
    /// Phase-1 pivots summed over solved blocks.
    pub phase1_pivots: usize,
    /// Worker threads used.
    pub threads_used: usize,
    /// Wall-clock milliseconds per *solved* block (cache hits excluded),
    /// in block order.
    pub block_ms: Vec<f64>,
    /// Simplex pivots per block in block order (warm hits report the
    /// pivot count of the cached solve).
    pub block_pivots: Vec<usize>,
}

/// A model with its forced-slack inequality rows removed.
///
/// `kept_rows[i]` is the original row index of the stripped model's row
/// `i`; dropped rows have dual 0 in any optimal basis of the stripped
/// model lifted back to the original.
#[derive(Debug, Clone)]
pub struct StrippedModel {
    /// The smaller model (same variables, fewer rows).
    pub model: Model,
    /// Original constraint index per surviving row.
    pub kept_rows: Vec<usize>,
    /// Number of rows dropped.
    pub dropped: usize,
}

/// Drops every inequality row that no point of the variable bound box can
/// violate.
///
/// For a `≤` row the left-hand side is maximised over the bounds
/// (positive coefficients at upper bounds, negative at lower); if even
/// that maximum stays `≤ rhs`, the row is implied by the bounds and can be
/// removed without changing the feasible set. `≥` rows are handled
/// symmetrically; `=` rows are never dropped. Rows with an infinite bound
/// in the relevant direction are conservatively kept.
pub fn strip_forced_slack_rows(model: &Model) -> StrippedModel {
    let mut out = Model::new(model.sense);
    for def in &model.vars {
        if def.integer {
            out.add_int_var(def.name.clone(), def.lower, def.upper, def.obj);
        } else {
            out.add_var(def.name.clone(), def.lower, def.upper, def.obj);
        }
    }
    let mut kept_rows = Vec::with_capacity(model.constraints.len());
    let mut dropped = 0usize;
    for (ri, c) in model.constraints.iter().enumerate() {
        let norm = c.expr.normalized();
        let rhs = c.rhs - norm.constant_value();
        let removable = match c.cmp {
            Cmp::Eq => false,
            Cmp::Le => {
                let max_lhs: f64 = norm
                    .terms()
                    .iter()
                    .map(|&(v, coeff)| {
                        let d = &model.vars[v.index()];
                        coeff * if coeff > 0.0 { d.upper } else { d.lower }
                    })
                    .sum();
                max_lhs.is_finite() && max_lhs <= rhs + 1e-9
            }
            Cmp::Ge => {
                let min_lhs: f64 = norm
                    .terms()
                    .iter()
                    .map(|&(v, coeff)| {
                        let d = &model.vars[v.index()];
                        coeff * if coeff > 0.0 { d.lower } else { d.upper }
                    })
                    .sum();
                min_lhs.is_finite() && min_lhs >= rhs - 1e-9
            }
        };
        if removable {
            dropped += 1;
        } else {
            out.add_constraint(c.expr.clone(), c.cmp, c.rhs)
                .expect("row was valid in the source model");
            kept_rows.push(ri);
        }
    }
    StrippedModel {
        model: out,
        kept_rows,
        dropped,
    }
}

/// One independent block of a decomposed model.
#[derive(Debug, Clone)]
pub struct Block {
    /// The self-contained sub-model.
    pub model: Model,
    /// Global variable index per block-local variable.
    pub vars: Vec<usize>,
    /// Global constraint index per block-local row.
    pub rows: Vec<usize>,
}

/// How an isolated variable (referenced by no row) is resolved.
#[derive(Debug, Clone, Copy)]
enum Pin {
    Value(f64),
    Unbounded,
}

/// A partition of a model into independent blocks.
///
/// Build with [`Decomposition::of`]; solve with [`Decomposition::solve`].
#[derive(Debug, Clone)]
pub struct Decomposition {
    blocks: Vec<Block>,
    /// `(global var index, pinned value)` for variables in no constraint.
    pinned: Vec<(usize, Pin)>,
    n_vars: usize,
    n_rows: usize,
}

fn find(parent: &mut [usize], x: usize) -> usize {
    let mut root = x;
    while parent[root] != root {
        root = parent[root];
    }
    let mut cur = x;
    while parent[cur] != root {
        let next = parent[cur];
        parent[cur] = root;
        cur = next;
    }
    root
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (find(parent, a), find(parent, b));
    if ra != rb {
        parent[ra.max(rb)] = ra.min(rb);
    }
}

impl Decomposition {
    /// Splits `model` into connected components of its variable/constraint
    /// incidence graph.
    ///
    /// Zero coefficients do not couple (rows are normalised first).
    /// Variables referenced by no row become *pinned*: the objective
    /// direction chooses the bound they sit at, exactly as a simplex solve
    /// of the full model would leave them.
    pub fn of(model: &Model) -> Decomposition {
        let n = model.vars.len();
        let mut parent: Vec<usize> = (0..n).collect();
        let normalized: Vec<_> = model
            .constraints
            .iter()
            .map(|c| c.expr.normalized())
            .collect();
        for norm in &normalized {
            let mut it = norm.terms().iter();
            if let Some(&(first, _)) = it.next() {
                for &(v, _) in it {
                    union(&mut parent, first.index(), v.index());
                }
            }
        }
        // Map components (by root) to dense block ids in ascending order of
        // their smallest variable — deterministic.
        let mut in_row = vec![false; n];
        for norm in &normalized {
            for &(v, _) in norm.terms() {
                in_row[v.index()] = true;
            }
        }
        let mut block_of_root: HashMap<usize, usize> = HashMap::new();
        let mut blocks_vars: Vec<Vec<usize>> = Vec::new();
        let mut pinned = Vec::new();
        for (i, &used) in in_row.iter().enumerate() {
            if !used {
                pinned.push((i, Self::pin(model, i)));
                continue;
            }
            let root = find(&mut parent, i);
            let bid = *block_of_root.entry(root).or_insert_with(|| {
                blocks_vars.push(Vec::new());
                blocks_vars.len() - 1
            });
            blocks_vars[bid].push(i);
        }
        // Assemble sub-models.
        let mut local_of = vec![usize::MAX; n];
        let mut blocks: Vec<Block> = blocks_vars
            .into_iter()
            .map(|vars| {
                let mut sub = Model::new(model.sense);
                for (local, &g) in vars.iter().enumerate() {
                    local_of[g] = local;
                    let d = &model.vars[g];
                    if d.integer {
                        sub.add_int_var(d.name.clone(), d.lower, d.upper, d.obj);
                    } else {
                        sub.add_var(d.name.clone(), d.lower, d.upper, d.obj);
                    }
                }
                Block {
                    model: sub,
                    vars,
                    rows: Vec::new(),
                }
            })
            .collect();
        for (ri, norm) in normalized.iter().enumerate() {
            let Some(&(first, _)) = norm.terms().first() else {
                // Empty row: constant-only, belongs to no block. It is
                // feasibility-checked by the monolithic path and by
                // `Model::max_violation`; the engine never emits one, so we
                // simply skip it here (a violated empty row would make the
                // whole model infeasible — callers using such models should
                // presolve first).
                continue;
            };
            let bid = block_of_root[&find(&mut parent, first.index())];
            let block = &mut blocks[bid];
            let terms: Vec<(Var, f64)> = norm
                .terms()
                .iter()
                .map(|&(v, coeff)| (Var(local_of[v.index()]), coeff))
                .collect();
            let c = &model.constraints[ri];
            block
                .model
                .add_constraint(terms, c.cmp, c.rhs - norm.constant_value())
                .expect("row was valid in the source model");
            block.rows.push(ri);
        }
        Decomposition {
            blocks,
            pinned,
            n_vars: n,
            n_rows: model.constraints.len(),
        }
    }

    fn pin(model: &Model, i: usize) -> Pin {
        let d = &model.vars[i];
        let improving_down = match model.sense {
            Sense::Min => d.obj >= 0.0,
            Sense::Max => d.obj <= 0.0,
        };
        let target = if improving_down { d.lower } else { d.upper };
        if target.is_finite() {
            Pin::Value(target)
        } else if d.obj == 0.0 {
            // Indifferent: any finite point works.
            let fallback = if d.lower.is_finite() {
                d.lower
            } else if d.upper.is_finite() {
                d.upper
            } else {
                0.0
            };
            Pin::Value(fallback)
        } else {
            Pin::Unbounded
        }
    }

    /// The independent blocks, in deterministic order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Variables pinned analytically (in no constraint row).
    pub fn pinned_count(&self) -> usize {
        self.pinned.len()
    }

    /// Solves all blocks and merges the optima into a [`Solution`] in the
    /// original variable space of `model` (which must be the model this
    /// decomposition was built from, or the stripped twin sharing its
    /// variable layout).
    ///
    /// Blocks run concurrently on up to `opts.threads` scoped workers; with
    /// a `cache`, blocks whose structural fingerprint matches a previous
    /// solve are answered without pivoting. Merging is deterministic: block
    /// results are combined in block order regardless of completion order.
    ///
    /// # Errors
    ///
    /// The error of the lowest-indexed failing block
    /// ([`LpError::Infeasible`], [`LpError::Unbounded`] or
    /// [`LpError::IterationLimit`]), or [`LpError::Unbounded`] when a
    /// pinned variable improves toward an infinite bound.
    pub fn solve(
        &self,
        model: &Model,
        opts: &DecomposeOptions,
        mut cache: Option<&mut WarmCache>,
    ) -> Result<(Solution, DecomposedStats), LpError> {
        assert_eq!(
            model.vars.len(),
            self.n_vars,
            "model/decomposition mismatch"
        );
        let start = Instant::now();
        let mut stats = DecomposedStats {
            blocks: self.blocks.len(),
            pinned_vars: self.pinned.len(),
            ..DecomposedStats::default()
        };
        for b in &self.blocks {
            stats.largest_block_vars = stats.largest_block_vars.max(b.model.var_count());
            stats.largest_block_rows = stats.largest_block_rows.max(b.model.constraint_count());
        }

        // Resolve cache hits up front (the cache is not shared with workers).
        let mut results: Vec<Option<Result<BlockResult, LpError>>> = vec![None; self.blocks.len()];
        let mut to_solve: Vec<usize> = Vec::with_capacity(self.blocks.len());
        let mut fingerprints: Vec<u128> = Vec::with_capacity(self.blocks.len());
        for (i, b) in self.blocks.iter().enumerate() {
            let fp = fingerprint(&b.model);
            fingerprints.push(fp);
            match cache.as_ref().and_then(|c| c.entries.get(&fp)) {
                Some(hit) => {
                    stats.warm_hits += 1;
                    results[i] = Some(hit.clone().map(|mut r| {
                        r.warm = true;
                        r
                    }));
                }
                None => to_solve.push(i),
            }
        }
        stats.warm_misses = to_solve.len();
        if let Some(c) = cache.as_mut() {
            c.hits += stats.warm_hits as u64;
            c.misses += stats.warm_misses as u64;
        }

        // Solve the misses, in parallel when asked and worthwhile.
        let threads = effective_threads(opts.threads, to_solve.len());
        stats.threads_used = threads;
        let solved: Vec<(usize, Result<BlockResult, LpError>)> = if threads <= 1 {
            to_solve
                .iter()
                .map(|&i| (i, solve_block(&self.blocks[i], &opts.simplex)))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let out: Mutex<Vec<(usize, Result<BlockResult, LpError>)>> =
                Mutex::new(Vec::with_capacity(to_solve.len()));
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = to_solve.get(k) else { break };
                        let r = solve_block(&self.blocks[i], &opts.simplex);
                        out.lock()
                            .expect("worker panicked holding lock")
                            .push((i, r));
                    });
                }
            });
            out.into_inner().expect("scope joined all workers")
        };
        for (i, r) in solved {
            if let Some(c) = cache.as_mut() {
                c.insert(fingerprints[i], &r);
            }
            results[i] = Some(r);
        }

        // Merge deterministically, reporting the lowest-indexed error.
        let mut values = vec![0.0; self.n_vars];
        for &(g, pin) in &self.pinned {
            match pin {
                Pin::Value(v) => values[g] = v,
                Pin::Unbounded => return Err(LpError::Unbounded),
            }
        }
        let mut duals = vec![0.0; self.n_rows];
        let mut agg = SolveStats::default();
        for (b, r) in self.blocks.iter().zip(results) {
            let r = r.expect("every block resolved")?;
            for (local, &g) in b.vars.iter().enumerate() {
                values[g] = r.values[local];
            }
            if let Some(block_duals) = &r.duals {
                for (local, &ri) in b.rows.iter().enumerate() {
                    duals[ri] = block_duals[local];
                }
            }
            agg.pivots += r.stats.pivots;
            agg.phase1_pivots += r.stats.phase1_pivots;
            agg.phase1_elapsed += r.stats.phase1_elapsed;
            if !r.warm {
                stats.block_ms.push(r.stats.elapsed.as_secs_f64() * 1e3);
            }
            stats.block_pivots.push(r.stats.pivots);
        }
        stats.pivots = agg.pivots;
        stats.phase1_pivots = agg.phase1_pivots;
        agg.elapsed = start.elapsed();
        let objective = model.objective_of(&values);
        let sol = Solution::assemble(values, objective, agg).with_duals(duals);
        Ok((sol, stats))
    }
}

/// One solved block, in block-local variable space.
#[derive(Debug, Clone)]
struct BlockResult {
    values: Vec<f64>,
    duals: Option<Vec<f64>>,
    stats: SolveStats,
    warm: bool,
}

fn solve_block(block: &Block, simplex: &SimplexOptions) -> Result<BlockResult, LpError> {
    let sol = block.model.solve_lp_with(*simplex)?;
    Ok(BlockResult {
        values: sol.values().to_vec(),
        duals: sol.duals().map(<[f64]>::to_vec),
        stats: sol.stats(),
        warm: false,
    })
}

fn effective_threads(requested: usize, work: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let t = if requested == 0 { auto } else { requested };
    t.clamp(1, work.max(1))
}

/// Content-addressed cache of solved blocks.
///
/// Keys are structural fingerprints ([`fingerprint`]) covering sense,
/// bounds, objective coefficients and every row — two blocks collide only
/// if they describe the *same* LP, in which case reusing the solution is
/// exact. Failed solves (infeasible / unbounded blocks) are cached too, so
/// repeated feasibility probes of an unchanged block cost nothing.
#[derive(Debug, Default)]
pub struct WarmCache {
    entries: HashMap<u128, Result<BlockResult, LpError>>,
    /// Lifetime block-level cache hits.
    pub hits: u64,
    /// Lifetime block-level cache misses.
    pub misses: u64,
}

impl WarmCache {
    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all cached blocks (the hit/miss counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn insert(&mut self, fp: u128, r: &Result<BlockResult, LpError>) {
        // Unbounded caps memory growth on pathological churn.
        if self.entries.len() >= 65_536 {
            self.entries.clear();
        }
        self.entries.insert(fp, r.clone());
    }
}

/// Structural fingerprint of a model: two independent 64-bit FNV-1a streams
/// over sense, variable definitions (bounds, objective, integrality) and
/// normalised rows. Variable names are excluded — reproducibly rebuilt
/// blocks hash identically even if display names change.
pub fn fingerprint(model: &Model) -> u128 {
    let mut a = Fnv::new(0xcbf2_9ce4_8422_2325);
    let mut b = Fnv::new(0x9ae1_6a3b_2f90_404f);
    let mut word = |w: u64| {
        a.write(w);
        b.write(w ^ 0xa5a5_a5a5_a5a5_a5a5);
    };
    word(match model.sense {
        Sense::Min => 1,
        Sense::Max => 2,
    });
    word(model.vars.len() as u64);
    for d in &model.vars {
        word(d.lower.to_bits());
        word(d.upper.to_bits());
        word(d.obj.to_bits());
        word(u64::from(d.integer));
    }
    word(model.constraints.len() as u64);
    for c in &model.constraints {
        word(match c.cmp {
            Cmp::Le => 3,
            Cmp::Ge => 4,
            Cmp::Eq => 5,
        });
        word(c.rhs.to_bits());
        let norm = c.expr.normalized();
        word(norm.constant_value().to_bits());
        for &(v, coeff) in norm.terms() {
            word(v.index() as u64);
            word(coeff.to_bits());
        }
    }
    (u128::from(a.0) << 64) | u128::from(b.0)
}

struct Fnv(u64);

impl Fnv {
    fn new(seed: u64) -> Fnv {
        Fnv(seed)
    }

    fn write(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Strip → split → solve, the bundled entry point.
///
/// Equivalent to [`strip_forced_slack_rows`] + [`Decomposition::of`] +
/// [`Decomposition::solve`], with duals lifted back to the *original* row
/// indexing (stripped rows report dual 0, which is exact — they are slack
/// at every feasible point).
///
/// # Errors
///
/// Same as [`Decomposition::solve`].
pub fn solve_decomposed(
    model: &Model,
    opts: &DecomposeOptions,
    cache: Option<&mut WarmCache>,
) -> Result<(Solution, DecomposedStats), LpError> {
    let stripped = strip_forced_slack_rows(model);
    let decomp = Decomposition::of(&stripped.model);
    let (sol, mut stats) = decomp.solve(&stripped.model, opts, cache)?;
    stats.dropped_rows = stripped.dropped;
    // Lift duals from stripped to original rows; recompute the objective in
    // the original model's term order so monolithic and decomposed paths
    // agree bit-for-bit on identical value vectors.
    let mut duals = vec![0.0; model.constraint_count()];
    if let Some(stripped_duals) = sol.duals() {
        for (si, &ri) in stripped.kept_rows.iter().enumerate() {
            duals[ri] = stripped_duals[si];
        }
    }
    let objective = model.objective_of(sol.values());
    let lifted =
        Solution::assemble(sol.values().to_vec(), objective, sol.stats()).with_duals(duals);
    Ok((lifted, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    /// Deterministic LCG for random separable models.
    fn rng(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 33) as f64) / f64::from(u32::MAX)
    }

    #[test]
    fn two_independent_blocks_found_and_solved() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 2.0);
        let z = m.add_var("z", 0.0, 10.0, 3.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 3.0).unwrap();
        m.add_constraint([(y, 1.0), (z, 1.0)], Cmp::Ge, 4.0)
            .unwrap();
        let d = Decomposition::of(&m);
        assert_eq!(d.blocks().len(), 2);
        let (sol, stats) = d.solve(&m, &DecomposeOptions::default(), None).unwrap();
        close(sol.objective(), 3.0 + 2.0 * 4.0);
        assert_eq!(stats.blocks, 2);
        assert_eq!(stats.warm_misses, 2);
        close(sol.value(x), 3.0);
        close(sol.value(y), 4.0);
        close(sol.value(z), 0.0);
    }

    #[test]
    fn matches_monolithic_on_random_separable_models() {
        let mut state = 7u64;
        for trial in 0..15 {
            let mut m = Model::new(Sense::Min);
            let groups = 2 + trial % 4;
            let mut vars = Vec::new();
            for _ in 0..groups {
                let a = m.add_var("a", 0.0, 5.0, 0.5 + rng(&mut state));
                let b = m.add_var("b", 0.0, 5.0, 0.5 + rng(&mut state));
                m.add_constraint([(a, 1.0), (b, 1.0)], Cmp::Ge, 1.0 + 3.0 * rng(&mut state))
                    .unwrap();
                m.add_constraint([(a, 1.0), (b, 0.5)], Cmp::Le, 9.0)
                    .unwrap();
                vars.push((a, b));
            }
            let mono = m.solve_lp().unwrap();
            let (dec, stats) = solve_decomposed(&m, &DecomposeOptions::default(), None).unwrap();
            close(mono.objective(), dec.objective());
            assert!(m.max_violation(dec.values()) < 1e-7, "trial {trial}");
            assert_eq!(stats.blocks, groups);
        }
    }

    #[test]
    fn strip_drops_only_unbindable_rows() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 5.0)
            .unwrap(); // max LHS 2 <= 5
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0)
            .unwrap(); // can bind
        m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Ge, -2.0)
            .unwrap(); // min LHS -1 >= -2
        let s = strip_forced_slack_rows(&m);
        assert_eq!(s.dropped, 2);
        assert_eq!(s.kept_rows, vec![1]);
        let (sol, _) = solve_decomposed(&m, &DecomposeOptions::default(), None).unwrap();
        close(sol.objective(), 1.0);
        // Dropped rows report zero duals at the original indices.
        let duals = sol.duals().unwrap();
        assert_eq!(duals.len(), 3);
        close(duals[0], 0.0);
        close(duals[2], 0.0);
    }

    #[test]
    fn equality_rows_never_stripped() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Eq, 0.5).unwrap();
        assert_eq!(strip_forced_slack_rows(&m).dropped, 0);
    }

    #[test]
    fn pinned_variables_follow_objective_direction() {
        let mut m = Model::new(Sense::Min);
        let lo = m.add_var("lo", 1.0, 7.0, 2.0); // wants lower
        let hi = m.add_var("hi", 1.0, 7.0, -2.0); // wants upper
        let free = m.add_var("free", 3.0, 9.0, 0.0); // indifferent → lower
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 2.0).unwrap();
        let (sol, stats) = solve_decomposed(&m, &DecomposeOptions::default(), None).unwrap();
        assert_eq!(stats.pinned_vars, 3);
        close(sol.value(lo), 1.0);
        close(sol.value(hi), 7.0);
        close(sol.value(free), 3.0);
        close(sol.value(x), 2.0);
    }

    #[test]
    fn pinned_variable_unbounded_detected() {
        let mut m = Model::new(Sense::Min);
        let _bad = m.add_var("bad", f64::NEG_INFINITY, 5.0, 1.0);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 0.5).unwrap();
        assert_eq!(
            solve_decomposed(&m, &DecomposeOptions::default(), None).map(|_| ()),
            Err(LpError::Unbounded)
        );
    }

    #[test]
    fn infeasible_block_reported() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 5.0).unwrap(); // infeasible block
        m.add_constraint([(y, 1.0)], Cmp::Ge, 1.0).unwrap(); // fine
        assert_eq!(
            solve_decomposed(&m, &DecomposeOptions::default(), None).map(|_| ()),
            Err(LpError::Infeasible)
        );
    }

    #[test]
    fn warm_cache_skips_unchanged_blocks() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 2.0).unwrap();
        m.add_constraint([(y, 1.0)], Cmp::Ge, 3.0).unwrap();
        let mut cache = WarmCache::default();
        let (s1, st1) =
            solve_decomposed(&m, &DecomposeOptions::default(), Some(&mut cache)).unwrap();
        assert_eq!((st1.warm_hits, st1.warm_misses), (0, 2));
        // Touch only y's block.
        let mut m2 = Model::new(Sense::Min);
        let x2 = m2.add_var("x", 0.0, 10.0, 1.0);
        let y2 = m2.add_var("y", 0.0, 10.0, 1.0);
        m2.add_constraint([(x2, 1.0)], Cmp::Ge, 2.0).unwrap();
        m2.add_constraint([(y2, 1.0)], Cmp::Ge, 4.0).unwrap();
        let (s2, st2) =
            solve_decomposed(&m2, &DecomposeOptions::default(), Some(&mut cache)).unwrap();
        assert_eq!((st2.warm_hits, st2.warm_misses), (1, 1));
        close(s1.value(x), s2.value(x2));
        close(s2.value(y2), 4.0);
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 3);
    }

    #[test]
    fn infeasible_results_are_cached_too() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 5.0).unwrap();
        let mut cache = WarmCache::default();
        for _ in 0..2 {
            assert_eq!(
                solve_decomposed(&m, &DecomposeOptions::default(), Some(&mut cache)).map(|_| ()),
                Err(LpError::Infeasible)
            );
        }
        assert_eq!((cache.hits, cache.misses), (1, 1));
    }

    #[test]
    fn multi_threaded_solve_is_deterministic() {
        let mut m = Model::new(Sense::Min);
        let mut state = 11u64;
        for g in 0..12 {
            let a = m.add_var(format!("a{g}"), 0.0, 5.0, 1.0 + rng(&mut state));
            let b = m.add_var(format!("b{g}"), 0.0, 5.0, 1.0 + rng(&mut state));
            m.add_constraint([(a, 1.0), (b, 1.0)], Cmp::Ge, 2.0 + rng(&mut state))
                .unwrap();
        }
        let serial = solve_decomposed(
            &m,
            &DecomposeOptions {
                threads: 1,
                ..Default::default()
            },
            None,
        )
        .unwrap()
        .0;
        for threads in [2, 8] {
            let par = solve_decomposed(
                &m,
                &DecomposeOptions {
                    threads,
                    ..Default::default()
                },
                None,
            )
            .unwrap()
            .0;
            assert_eq!(serial.values(), par.values(), "threads={threads}");
            assert_eq!(serial.objective(), par.objective());
        }
    }

    #[test]
    fn fingerprint_distinguishes_rhs_and_bounds() {
        let build = |rhs: f64, ub: f64| {
            let mut m = Model::new(Sense::Min);
            let x = m.add_var("x", 0.0, ub, 1.0);
            m.add_constraint([(x, 1.0)], Cmp::Ge, rhs).unwrap();
            m
        };
        let base = fingerprint(&build(1.0, 5.0));
        assert_eq!(base, fingerprint(&build(1.0, 5.0)));
        assert_ne!(base, fingerprint(&build(2.0, 5.0)));
        assert_ne!(base, fingerprint(&build(1.0, 6.0)));
    }

    #[test]
    fn constraint_free_model_fully_pinned() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 2.0, 9.0, 1.0);
        let (sol, stats) = solve_decomposed(&m, &DecomposeOptions::default(), None).unwrap();
        assert_eq!(stats.blocks, 0);
        assert_eq!(stats.pinned_vars, 1);
        close(sol.value(x), 2.0);
        close(sol.objective(), 2.0);
    }
}
