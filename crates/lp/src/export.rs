//! CPLEX LP-format export.
//!
//! The paper solves its formulation with CPLEX; this writer produces the
//! same text format so any model built here can be cross-checked against
//! CPLEX/GLPK/HiGHS or inspected by hand. (The reproduction's own simplex
//! is the solver of record — the export exists for debugging and external
//! validation.)

use crate::model::{Cmp, Model, Sense};
use std::fmt::Write as _;

impl Model {
    /// Serialises the model in CPLEX LP format.
    ///
    /// Variable names are sanitised (`[^A-Za-z0-9_]` → `_`) and made unique
    /// by suffixing the variable index, since LP format forbids many
    /// characters Rust identifiers allow.
    pub fn to_lp_format(&self) -> String {
        let name = |i: usize| -> String {
            let raw: String = self.vars[i]
                .name
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            format!("{raw}_{i}")
        };
        let mut out = String::new();
        out.push_str(match self.sense {
            Sense::Min => "Minimize\n obj:",
            Sense::Max => "Maximize\n obj:",
        });
        let mut first = true;
        for (i, v) in self.vars.iter().enumerate() {
            if v.obj != 0.0 {
                let sign = if v.obj >= 0.0 && !first { " +" } else { " " };
                let _ = write!(out, "{sign}{} {}", trim_num(v.obj), name(i));
                first = false;
            }
        }
        if first {
            out.push_str(" 0");
        }
        out.push_str("\nSubject To\n");
        for (ci, c) in self.constraints.iter().enumerate() {
            let norm = c.expr.normalized();
            let _ = write!(out, " c{ci}:");
            let mut first = true;
            for &(v, coeff) in norm.terms() {
                let sign = if coeff >= 0.0 && !first { " +" } else { " " };
                let _ = write!(out, "{sign}{} {}", trim_num(coeff), name(v.index()));
                first = false;
            }
            if first {
                out.push_str(" 0");
            }
            let op = match c.cmp {
                Cmp::Le => "<=",
                Cmp::Ge => ">=",
                Cmp::Eq => "=",
            };
            let _ = writeln!(out, " {op} {}", trim_num(c.rhs - norm.constant_value()));
        }
        out.push_str("Bounds\n");
        for (i, v) in self.vars.iter().enumerate() {
            let n = name(i);
            match (v.lower.is_finite(), v.upper.is_finite()) {
                (true, true) => {
                    let _ = writeln!(
                        out,
                        " {} <= {n} <= {}",
                        trim_num(v.lower),
                        trim_num(v.upper)
                    );
                }
                (true, false) => {
                    let _ = writeln!(out, " {n} >= {}", trim_num(v.lower));
                }
                (false, true) => {
                    let _ = writeln!(out, " -inf <= {n} <= {}", trim_num(v.upper));
                }
                (false, false) => {
                    let _ = writeln!(out, " {n} free");
                }
            }
        }
        let ints: Vec<String> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.integer)
            .map(|(i, _)| name(i))
            .collect();
        if !ints.is_empty() {
            out.push_str("General\n");
            for n in ints {
                let _ = writeln!(out, " {n}");
            }
        }
        out.push_str("End\n");
        out
    }
}

/// Formats a float without trailing zeros (LP files get long otherwise).
fn trim_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_structure() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 5.0, 1.0);
        let q = m.add_int_var("q v", 0.0, f64::INFINITY, 2.5);
        m.add_constraint([(x, 1.0), (q, -3.0)], Cmp::Ge, 1.0)
            .unwrap();
        let text = m.to_lp_format();
        assert!(text.starts_with("Minimize"));
        assert!(text.contains("Subject To"));
        assert!(text.contains(" c0:"));
        assert!(text.contains(">= 1"));
        assert!(text.contains("Bounds"));
        assert!(text.contains("0 <= x_0 <= 5"));
        assert!(text.contains("q_v_1 >= 0"), "{text}");
        assert!(text.contains("General"));
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn maximise_and_free_variables() {
        let mut m = Model::new(Sense::Max);
        let _x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let text = m.to_lp_format();
        assert!(text.starts_with("Maximize"));
        assert!(text.contains("free"));
    }

    #[test]
    fn numbers_trimmed() {
        assert_eq!(trim_num(3.0), "3");
        assert_eq!(trim_num(-2.0), "-2");
        assert_eq!(trim_num(0.5), "0.5");
    }

    #[test]
    fn constant_folded_into_rhs() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let expr = crate::model::LinExpr::new().term(x, 1.0).constant(2.0);
        m.add_constraint(expr, Cmp::Le, 5.0).unwrap();
        let text = m.to_lp_format();
        // x + 2 <= 5 becomes x <= 3.
        assert!(text.contains("<= 3"), "{text}");
    }
}
