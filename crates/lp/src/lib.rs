//! Linear-programming substrate for the APPLE reproduction.
//!
//! The paper formulates VNF placement as an Integer Linear Program (Eq. 1–8)
//! and solves its **LP relaxation** with CPLEX. CPLEX is proprietary and no
//! LP crate is available offline, so this crate implements the required
//! machinery from scratch:
//!
//! * a modelling layer ([`Model`], [`Var`], [`LinExpr`]) for building
//!   minimisation/maximisation problems with `≤ / ≥ / =` constraints and
//!   variable bounds,
//! * a dense **two-phase primal simplex** solver with Dantzig pricing and a
//!   Bland's-rule anti-cycling fallback ([`simplex`]),
//! * a depth-first **branch-and-bound** MILP solver for integer-marked
//!   variables ([`branch`]), used both to get exact optima on small
//!   instances and to validate the LP-relax-and-round pipeline the paper
//!   uses at scale,
//! * a **decomposed parallel solve** ([`decompose`]): forced-slack rows are
//!   stripped, the model splits into connected components of the
//!   variable-incidence graph, blocks solve concurrently on scoped threads
//!   and merge deterministically; a content-addressed [`WarmCache`] lets
//!   re-solves skip untouched blocks entirely (DESIGN.md §8).
//!
//! # Example
//!
//! ```
//! use apple_lp::{Model, Cmp, Sense};
//!
//! // min x + 2y  s.t.  x + y >= 3, y <= 1.5, x,y >= 0
//! let mut m = Model::new(Sense::Min);
//! let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
//! let y = m.add_var("y", 0.0, 1.5, 2.0);
//! m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0)?;
//! let sol = m.solve_lp()?;
//! assert!((sol.objective() - 3.0).abs() < 1e-7); // x=3, y=0
//! # Ok::<(), apple_lp::LpError>(())
//! ```

#![warn(missing_docs)]

pub mod branch;
pub mod decompose;
pub mod export;
pub mod model;
pub mod presolve;
pub mod simplex;
pub mod solution;
pub mod stats;

pub use branch::{BranchConfig, MilpStats};
pub use decompose::{solve_decomposed, DecomposeOptions, DecomposedStats, WarmCache};
pub use model::{Cmp, LinExpr, Model, Sense, Var};
pub use presolve::{Presolved, ReducedModel};
pub use simplex::SimplexOptions;
pub use solution::{LpError, Solution, SolveStats};
