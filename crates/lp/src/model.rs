//! Modelling layer: variables, linear expressions, constraints.

use crate::solution::LpError;
use std::fmt;
use std::ops::{Add, Mul};

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimise the objective (APPLE minimises total VNF instances).
    Min,
    /// Maximise the objective.
    Max,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmp::Le => write!(f, "<="),
            Cmp::Ge => write!(f, ">="),
            Cmp::Eq => write!(f, "=="),
        }
    }
}

/// Handle to a decision variable in a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Dense index of this variable within its model.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear expression `Σ cᵢ·xᵢ + constant`.
///
/// Built via [`LinExpr::new`] / [`LinExpr::term`] or the `+` / `*`
/// operators.
///
/// # Example
///
/// ```
/// use apple_lp::{LinExpr, Model, Sense};
/// let mut m = Model::new(Sense::Min);
/// let x = m.add_var("x", 0.0, 1.0, 1.0);
/// let e = LinExpr::new().term(x, 2.0).constant(1.0);
/// assert_eq!(e.terms().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(Var, f64)>,
    constant: f64,
}

impl LinExpr {
    /// Creates the zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `coeff · var` to the expression (builder style).
    pub fn term(mut self, var: Var, coeff: f64) -> Self {
        self.terms.push((var, coeff));
        self
    }

    /// Adds a constant offset (builder style).
    pub fn constant(mut self, c: f64) -> Self {
        self.constant += c;
        self
    }

    /// The `(variable, coefficient)` pairs, unaggregated.
    pub fn terms(&self) -> &[(Var, f64)] {
        &self.terms
    }

    /// The constant offset.
    pub fn constant_value(&self) -> f64 {
        self.constant
    }

    /// Collapses duplicate variables and drops zero coefficients.
    pub fn normalized(&self) -> LinExpr {
        let mut sorted = self.terms.clone();
        sorted.sort_by_key(|(v, _)| *v);
        let mut out: Vec<(Var, f64)> = Vec::with_capacity(sorted.len());
        for (v, c) in sorted {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| *c != 0.0);
        LinExpr {
            terms: out,
            constant: self.constant,
        }
    }

    /// Evaluates the expression against a dense assignment.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|(v, c)| c * x.get(v.0).copied().unwrap_or(0.0))
            .sum::<f64>()
            + self.constant
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        LinExpr::new().term(v, 1.0)
    }
}

impl<const N: usize> From<[(Var, f64); N]> for LinExpr {
    fn from(terms: [(Var, f64); N]) -> Self {
        LinExpr {
            terms: terms.to_vec(),
            constant: 0.0,
        }
    }
}

impl From<Vec<(Var, f64)>> for LinExpr {
    fn from(terms: Vec<(Var, f64)>) -> Self {
        LinExpr {
            terms,
            constant: 0.0,
        }
    }
}

impl From<&[(Var, f64)]> for LinExpr {
    fn from(terms: &[(Var, f64)]) -> Self {
        LinExpr {
            terms: terms.to_vec(),
            constant: 0.0,
        }
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

/// One row of the model.
#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub expr: LinExpr,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// Metadata of a variable.
#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub obj: f64,
    pub integer: bool,
}

/// An LP / MILP model under construction.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Creates an empty model with the given optimisation direction.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a continuous variable with bounds `[lower, upper]` and objective
    /// coefficient `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper`, either bound is NaN, or `lower` is
    /// `+∞` / `upper` is `-∞`.
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64, obj: f64) -> Var {
        self.push_var(name.into(), lower, upper, obj, false)
    }

    /// Adds an integer variable (used for APPLE's instance counts `q^v_n`).
    /// The LP relaxation treats it as continuous; [`Model::solve_ilp`]
    /// enforces integrality.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Model::add_var`].
    pub fn add_int_var(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
        obj: f64,
    ) -> Var {
        self.push_var(name.into(), lower, upper, obj, true)
    }

    fn push_var(&mut self, name: String, lower: f64, upper: f64, obj: f64, integer: bool) -> Var {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN bound on {name}");
        assert!(lower <= upper, "empty domain [{lower}, {upper}] on {name}");
        assert!(
            lower < f64::INFINITY && upper > f64::NEG_INFINITY,
            "unbounded-empty domain on {name}"
        );
        let v = Var(self.vars.len());
        self.vars.push(VarDef {
            name,
            lower,
            upper,
            obj,
            integer,
        });
        v
    }

    /// Adds the constraint `expr cmp rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LpError::UnknownVar`] if the expression references a
    /// variable from another model, and [`LpError::BadCoefficient`] for
    /// non-finite coefficients or right-hand sides.
    pub fn add_constraint(
        &mut self,
        expr: impl Into<LinExpr>,
        cmp: Cmp,
        rhs: f64,
    ) -> Result<(), LpError> {
        let expr = expr.into();
        for &(v, c) in expr.terms() {
            if v.0 >= self.vars.len() {
                return Err(LpError::UnknownVar(v.0));
            }
            if !c.is_finite() {
                return Err(LpError::BadCoefficient);
            }
        }
        if !rhs.is_finite() || !expr.constant_value().is_finite() {
            return Err(LpError::BadCoefficient);
        }
        self.constraints.push(Constraint { expr, cmp, rhs });
        Ok(())
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Variables flagged integer.
    pub fn integer_vars(&self) -> Vec<Var> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, d)| d.integer)
            .map(|(i, _)| Var(i))
            .collect()
    }

    /// Name of a variable (for diagnostics).
    pub fn var_name(&self, v: Var) -> &str {
        &self.vars[v.0].name
    }

    /// Checks a dense assignment against every constraint and bound,
    /// returning the largest violation (0.0 when feasible).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for (i, d) in self.vars.iter().enumerate() {
            let xi = x.get(i).copied().unwrap_or(0.0);
            worst = worst.max(d.lower - xi).max(xi - d.upper);
        }
        for c in &self.constraints {
            let lhs = c.expr.eval(x);
            let viol = match c.cmp {
                Cmp::Le => lhs - c.rhs,
                Cmp::Ge => c.rhs - lhs,
                Cmp::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst.max(0.0)
    }

    /// Objective value of a dense assignment.
    pub fn objective_of(&self, x: &[f64]) -> f64 {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, d)| d.obj * x.get(i).copied().unwrap_or(0.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builder_and_eval() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        let e = LinExpr::new().term(x, 2.0).term(y, -1.0).constant(3.0);
        assert_eq!(e.eval(&[1.0, 4.0]), 2.0 - 4.0 + 3.0);
    }

    #[test]
    fn normalize_collapses_duplicates() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        let e = LinExpr::new().term(x, 2.0).term(x, 3.0).term(x, -5.0);
        assert!(e.normalized().terms().is_empty());
    }

    #[test]
    fn operators() {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        let y = m.add_var("y", 0.0, 1.0, 0.0);
        let e = (LinExpr::from(x) + LinExpr::from(y)) * 2.0;
        assert_eq!(e.eval(&[1.0, 1.0]), 4.0);
    }

    #[test]
    fn unknown_var_rejected() {
        let mut m1 = Model::new(Sense::Min);
        let mut m2 = Model::new(Sense::Min);
        let _x1 = m1.add_var("x", 0.0, 1.0, 0.0);
        let foreign = Var(5);
        let err = m2.add_constraint([(foreign, 1.0)], Cmp::Le, 1.0);
        assert_eq!(err, Err(LpError::UnknownVar(5)));
    }

    #[test]
    fn bad_coefficient_rejected() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        assert_eq!(
            m.add_constraint([(x, f64::NAN)], Cmp::Le, 1.0),
            Err(LpError::BadCoefficient)
        );
        assert_eq!(
            m.add_constraint([(x, 1.0)], Cmp::Le, f64::INFINITY),
            Err(LpError::BadCoefficient)
        );
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn inverted_bounds_panic() {
        let mut m = Model::new(Sense::Min);
        m.add_var("x", 2.0, 1.0, 0.0);
    }

    #[test]
    fn violation_checker() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 0.5).unwrap();
        assert_eq!(m.max_violation(&[0.7]), 0.0);
        assert!((m.max_violation(&[0.2]) - 0.3).abs() < 1e-12);
        assert!((m.max_violation(&[1.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn integer_vars_listed() {
        let mut m = Model::new(Sense::Min);
        let _x = m.add_var("x", 0.0, 1.0, 0.0);
        let q = m.add_int_var("q", 0.0, 9.0, 1.0);
        assert_eq!(m.integer_vars(), vec![q]);
        assert_eq!(m.var_name(q), "q");
    }
}
