//! Conservative presolve: shrink a model before the simplex sees it.
//!
//! Three safe reductions (each with an exact solution-reconstruction map):
//!
//! 1. **fixed variables** (`lower == upper`) are substituted into every
//!    constraint and the objective,
//! 2. **empty rows** (no terms after substitution) are checked for trivial
//!    feasibility and dropped,
//! 3. **unconstrained variables** (appearing in no row) are pinned to
//!    whichever bound the objective favours (infeasible if that bound is
//!    infinite in the improving direction).
//!
//! The APPLE engine's models contain many fixed q variables during the
//! rounding-repair loop, which is where this pays off.

use crate::model::{Cmp, LinExpr, Model, Var};
use crate::solution::{LpError, Solution, SolveStats};

/// Outcome of presolving: either a reduced model plus reconstruction data,
/// or the answer itself (fully solved / infeasible at presolve time).
pub enum Presolved {
    /// A smaller model remains to be solved.
    Reduced(ReducedModel),
    /// Presolve fixed every variable; the full solution is known.
    Solved(Solution),
    /// Presolve proved infeasibility.
    Infeasible,
}

/// A reduced model plus the mapping back to the original variable space.
pub struct ReducedModel {
    /// The smaller model.
    pub model: Model,
    /// For each original variable: either `Fixed(value)` or
    /// `Kept(new index)`.
    mapping: Vec<Disposition>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Disposition {
    Fixed(f64),
    Kept(usize),
}

impl ReducedModel {
    /// Lifts a solution of the reduced model back to the original space.
    pub fn lift(&self, original: &Model, reduced_solution: &Solution) -> Solution {
        let values: Vec<f64> = self
            .mapping
            .iter()
            .map(|d| match d {
                Disposition::Fixed(v) => *v,
                Disposition::Kept(idx) => reduced_solution.values()[*idx],
            })
            .collect();
        let objective = original.objective_of(&values);
        Solution::new(values, objective, reduced_solution.stats())
    }

    /// Number of variables eliminated by presolve.
    pub fn eliminated(&self) -> usize {
        self.mapping
            .iter()
            .filter(|d| matches!(d, Disposition::Fixed(_)))
            .count()
    }
}

impl Model {
    /// Runs presolve. See the [module docs](self) for the reductions.
    pub fn presolve(&self) -> Presolved {
        let n = self.vars.len();
        // Pass 1: fix variables with equal bounds, find used variables.
        let mut used = vec![false; n];
        for c in &self.constraints {
            for &(v, coeff) in c.expr.terms() {
                if coeff != 0.0 {
                    used[v.index()] = true;
                }
            }
        }
        let mut mapping = Vec::with_capacity(n);
        let mut kept = 0usize;
        for (i, def) in self.vars.iter().enumerate() {
            if def.lower == def.upper {
                mapping.push(Disposition::Fixed(def.lower));
            } else if !used[i] {
                // Unconstrained: objective decides the bound.
                let improving_down = match self.sense {
                    crate::model::Sense::Min => def.obj >= 0.0,
                    crate::model::Sense::Max => def.obj <= 0.0,
                };
                let pin = if improving_down { def.lower } else { def.upper };
                if !pin.is_finite() {
                    // Unbounded in the improving direction — only an error
                    // if the coefficient is non-zero.
                    if def.obj != 0.0 {
                        return Presolved::Infeasible; // actually unbounded;
                                                      // callers treat both as "no optimum"
                    }
                    let fallback = if def.lower.is_finite() {
                        def.lower
                    } else {
                        def.upper.min(0.0).max(def.lower)
                    };
                    mapping.push(Disposition::Fixed(if fallback.is_finite() {
                        fallback
                    } else {
                        0.0
                    }));
                } else {
                    mapping.push(Disposition::Fixed(pin));
                }
            } else {
                mapping.push(Disposition::Kept(kept));
                kept += 1;
            }
        }

        // Pass 2: rebuild the model over kept variables.
        let mut reduced = Model::new(self.sense);
        for (i, def) in self.vars.iter().enumerate() {
            if let Disposition::Kept(_) = mapping[i] {
                if def.integer {
                    reduced.add_int_var(def.name.clone(), def.lower, def.upper, def.obj);
                } else {
                    reduced.add_var(def.name.clone(), def.lower, def.upper, def.obj);
                }
            }
        }
        for c in &self.constraints {
            let mut terms = Vec::new();
            let mut shift = 0.0;
            for &(v, coeff) in c.expr.terms() {
                match mapping[v.index()] {
                    Disposition::Fixed(val) => shift += coeff * val,
                    Disposition::Kept(idx) => terms.push((Var(idx), coeff)),
                }
            }
            let rhs = c.rhs - shift - c.expr.constant_value();
            if terms.is_empty() {
                // Empty row: check trivial feasibility.
                let ok = match c.cmp {
                    Cmp::Le => 0.0 <= rhs + 1e-9,
                    Cmp::Ge => 0.0 >= rhs - 1e-9,
                    Cmp::Eq => rhs.abs() <= 1e-9,
                };
                if !ok {
                    return Presolved::Infeasible;
                }
                continue;
            }
            reduced
                .add_constraint(LinExpr::from(terms), c.cmp, rhs)
                .expect("reduced constraints stay finite");
        }

        if reduced.var_count() == 0 {
            // Everything fixed: reconstruct directly.
            let values: Vec<f64> = mapping
                .iter()
                .map(|d| match d {
                    Disposition::Fixed(v) => *v,
                    Disposition::Kept(_) => unreachable!("no kept variables"),
                })
                .collect();
            if self.max_violation(&values) > 1e-7 {
                return Presolved::Infeasible;
            }
            let objective = self.objective_of(&values);
            return Presolved::Solved(Solution::new(values, objective, SolveStats::default()));
        }
        Presolved::Reduced(ReducedModel {
            model: reduced,
            mapping,
        })
    }

    /// Presolve, solve the remainder, and lift back — a drop-in alternative
    /// to [`Model::solve_lp`] that is faster when many variables are fixed.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve_lp`].
    pub fn solve_lp_presolved(&self) -> Result<Solution, LpError> {
        self.solve_lp_presolved_recorded(&apple_telemetry::NOOP)
    }

    /// [`Model::solve_lp_presolved`] with telemetry: records the number of
    /// variables presolve eliminated (`lp.presolve.eliminated`), how often
    /// presolve alone produced the answer (`lp.presolve.solved`), and the
    /// inner simplex run's stats under the `lp` prefix.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve_lp`].
    pub fn solve_lp_presolved_recorded(
        &self,
        rec: &dyn apple_telemetry::Recorder,
    ) -> Result<Solution, LpError> {
        match self.presolve() {
            Presolved::Infeasible => Err(LpError::Infeasible),
            Presolved::Solved(s) => {
                rec.counter("lp.presolve.eliminated", self.var_count() as u64);
                rec.counter("lp.presolve.solved", 1);
                Ok(s)
            }
            Presolved::Reduced(r) => {
                rec.counter("lp.presolve.eliminated", r.eliminated() as u64);
                let inner = r.model.solve_lp()?;
                inner.stats().record(rec, "lp");
                Ok(r.lift(self, &inner))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn fixed_variables_substituted() {
        // min x + y, x == 2, x + y >= 5 → y = 3, obj 5.
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 2.0, 2.0, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0)
            .unwrap();
        match m.presolve() {
            Presolved::Reduced(r) => {
                assert_eq!(r.model.var_count(), 1);
                assert_eq!(r.eliminated(), 1);
                let inner = r.model.solve_lp().unwrap();
                let full = r.lift(&m, &inner);
                assert!((full.value(x) - 2.0).abs() < 1e-9);
                assert!((full.value(y) - 3.0).abs() < 1e-9);
                assert!((full.objective() - 5.0).abs() < 1e-9);
            }
            _ => panic!("expected reduction"),
        }
    }

    #[test]
    fn fully_fixed_model_solved_at_presolve() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 1.5, 1.5, 2.0);
        m.add_constraint([(x, 2.0)], Cmp::Le, 4.0).unwrap();
        match m.presolve() {
            Presolved::Solved(s) => {
                assert_eq!(s.value(x), 1.5);
                assert_eq!(s.objective(), 3.0);
            }
            _ => panic!("expected solved"),
        }
    }

    #[test]
    fn infeasible_fixed_combination_detected() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 3.0, 3.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 2.0).unwrap();
        assert!(matches!(m.presolve(), Presolved::Infeasible));
    }

    #[test]
    fn unconstrained_variable_pinned_by_objective() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 1.0, 7.0, 1.0); // wants lower bound
        let y = m.add_var("y", 1.0, 7.0, -1.0); // wants upper bound
        let z = m.add_var("z", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(z, 1.0)], Cmp::Ge, 2.0).unwrap();
        let s = m.solve_lp_presolved().unwrap();
        assert_eq!(s.value(x), 1.0);
        assert_eq!(s.value(y), 7.0);
        assert!((s.value(z) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn presolved_matches_plain_solver() {
        let mut m = Model::new(Sense::Min);
        let a = m.add_var("a", 0.0, 10.0, 3.0);
        let b = m.add_var("b", 2.0, 2.0, 5.0);
        let c = m.add_var("c", 0.0, 10.0, 1.0);
        m.add_constraint([(a, 1.0), (b, 1.0), (c, 2.0)], Cmp::Ge, 8.0)
            .unwrap();
        m.add_constraint([(a, 1.0)], Cmp::Le, 4.0).unwrap();
        let plain = m.solve_lp().unwrap();
        let pre = m.solve_lp_presolved().unwrap();
        assert!((plain.objective() - pre.objective()).abs() < 1e-7);
        assert!(m.max_violation(pre.values()) < 1e-7);
    }

    #[test]
    fn empty_feasible_rows_dropped() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 1.0, 1.0, 1.0);
        // After substitution: 0 <= 5 (feasible, dropped).
        m.add_constraint([(x, 1.0)], Cmp::Le, 6.0).unwrap();
        match m.presolve() {
            Presolved::Solved(s) => assert_eq!(s.value(x), 1.0),
            _ => panic!("expected solved"),
        }
    }
}
