//! Dense two-phase primal simplex.
//!
//! The instances APPLE produces are small-to-medium (a few thousand rows and
//! columns at the 79-switch AS-3679 scale), so a dense tableau with Dantzig
//! pricing is the right complexity/robustness trade-off. Anti-cycling is
//! handled by falling back to Bland's rule once the pivot count passes a
//! degeneracy threshold.
//!
//! Standard-form conversion:
//!
//! * variables are shifted by their lower bound so every variable is `≥ 0`;
//! * finite upper bounds become explicit `≤` rows;
//! * `≤` rows gain a slack, `≥` rows a surplus, and any row without a ready
//!   basic column gains a phase-1 artificial variable.

use crate::model::{Cmp, Model, Sense};
use crate::solution::{LpError, Solution, SolveStats};
use std::time::Instant;

/// Tuning knobs for the simplex solver.
#[derive(Debug, Clone, Copy)]
pub struct SimplexOptions {
    /// Hard pivot limit across both phases; `0` means automatic
    /// (`200 · (rows + cols) + 10_000`).
    pub max_pivots: usize,
    /// Feasibility / optimality tolerance.
    pub tolerance: f64,
    /// Pivot count after which pricing switches from Dantzig to Bland's
    /// rule; `0` means automatic (`20 · rows + 200`).
    pub bland_after: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_pivots: 0,
            tolerance: 1e-9,
            bland_after: 0,
        }
    }
}

/// Internal dense tableau.
struct Tableau {
    /// rows × (cols + 1); last column is the RHS.
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// basis[row] = column currently basic in that row.
    basis: Vec<usize>,
    /// cost row (reduced costs), length cols + 1; last entry is -objective.
    cost: Vec<f64>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    /// Performs a pivot on (row, col): row scaled so the pivot becomes 1,
    /// then eliminated from every other row and the cost row.
    fn pivot(&mut self, prow: usize, pcol: usize) {
        let w = self.cols + 1;
        let pval = self.at(prow, pcol);
        debug_assert!(pval.abs() > 1e-12, "pivot on (near-)zero element");
        let inv = 1.0 / pval;
        {
            let row = &mut self.a[prow * w..(prow + 1) * w];
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
        // Copy pivot row to avoid aliasing during elimination.
        let prow_copy: Vec<f64> = self.a[prow * w..(prow + 1) * w].to_vec();
        for r in 0..self.rows {
            if r == prow {
                continue;
            }
            let factor = self.at(r, pcol);
            if factor != 0.0 {
                let row = &mut self.a[r * w..(r + 1) * w];
                for (x, p) in row.iter_mut().zip(&prow_copy) {
                    *x -= factor * p;
                }
                row[pcol] = 0.0; // kill residual rounding noise
            }
        }
        let cfac = self.cost[pcol];
        if cfac != 0.0 {
            for (x, p) in self.cost.iter_mut().zip(&prow_copy) {
                *x -= cfac * p;
            }
            self.cost[pcol] = 0.0;
        }
        self.basis[prow] = pcol;
    }

    /// Chooses the entering column: Dantzig (most negative reduced cost)
    /// or Bland (first negative) depending on `bland`.
    fn entering(&self, tol: f64, bland: bool, allowed: usize) -> Option<usize> {
        if bland {
            (0..allowed).find(|&c| self.cost[c] < -tol)
        } else {
            let mut best = None;
            let mut best_val = -tol;
            for c in 0..allowed {
                if self.cost[c] < best_val {
                    best_val = self.cost[c];
                    best = Some(c);
                }
            }
            best
        }
    }

    /// Ratio test: row minimising rhs / a[r][col] over positive pivots,
    /// ties broken by smallest basis column (lexicographic, for Bland
    /// compatibility).
    fn leaving(&self, col: usize, tol: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.rows {
            let a = self.at(r, col);
            if a > tol {
                let ratio = self.rhs(r) / a;
                match best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < bratio - tol
                            || ((ratio - bratio).abs() <= tol && self.basis[r] < self.basis[br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(r, _)| r)
    }
}

/// Result of standard-form conversion: mapping info to reconstruct original
/// variable values.
struct StandardForm {
    tableau: Tableau,
    /// Number of structural (shifted original) columns.
    n_struct: usize,
    /// Lower bound shift per original variable.
    shifts: Vec<f64>,
    /// Original objective coefficients per structural column (in Min sense).
    obj: Vec<f64>,
    /// Sign flip applied to the objective (for Max problems).
    obj_flip: f64,
    /// First artificial column index (artificials occupy the tail).
    art_start: usize,
    /// Per model-constraint row: the column whose final reduced cost
    /// reveals the row's dual, and the multiplier converting it
    /// (`y_i = mult · cost[col]`). Only the first `constraints.len()` rows
    /// (bound rows appended afterwards are excluded).
    dual_probe: Vec<(usize, f64)>,
}

fn build_standard_form(model: &Model) -> StandardForm {
    let n_struct = model.vars.len();
    let shifts: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let obj_flip = match model.sense {
        Sense::Min => 1.0,
        Sense::Max => -1.0,
    };
    let obj: Vec<f64> = model.vars.iter().map(|v| v.obj * obj_flip).collect();

    // Gather rows: model constraints plus finite upper bounds.
    // Each row: (terms over structural cols, cmp, rhs) with rhs already
    // adjusted for shifts and expression constants.
    struct Row {
        terms: Vec<(usize, f64)>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.constraints.len());
    for c in &model.constraints {
        let norm = c.expr.normalized();
        let mut rhs = c.rhs - norm.constant_value();
        let mut terms = Vec::with_capacity(norm.terms().len());
        for &(v, coeff) in norm.terms() {
            rhs -= coeff * shifts[v.index()];
            terms.push((v.index(), coeff));
        }
        rows.push(Row {
            terms,
            cmp: c.cmp,
            rhs,
        });
    }
    for (i, v) in model.vars.iter().enumerate() {
        if v.upper.is_finite() && v.upper > v.lower {
            rows.push(Row {
                terms: vec![(i, 1.0)],
                cmp: Cmp::Le,
                rhs: v.upper - v.lower,
            });
        } else if v.upper == v.lower {
            rows.push(Row {
                terms: vec![(i, 1.0)],
                cmp: Cmp::Eq,
                rhs: 0.0,
            });
        }
    }

    let m = rows.len();
    // Count slack columns.
    let n_slack = rows
        .iter()
        .filter(|r| matches!(r.cmp, Cmp::Le | Cmp::Ge))
        .count();

    // Column layout: [structural | slacks | artificials]; artificials are
    // allocated lazily below.
    let mut slack_col = n_struct;
    let mut need_artificial = Vec::with_capacity(m);
    let cols_noart = n_struct + n_slack;

    // First pass to learn per-row slack column & whether artificial needed.
    struct RowMeta {
        slack: Option<(usize, f64)>, // (col, sign)
        negate: bool,
    }
    let mut metas = Vec::with_capacity(m);
    for r in &rows {
        let negate = r.rhs < 0.0;
        // After optional negation the cmp flips for Le/Ge.
        let eff_cmp = match (r.cmp, negate) {
            (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Ge, true) => Cmp::Le,
            (c, _) => c,
        };
        let slack = match r.cmp {
            Cmp::Le | Cmp::Ge => {
                let col = slack_col;
                slack_col += 1;
                // Slack sign in the *original* row orientation.
                let sign = if r.cmp == Cmp::Le { 1.0 } else { -1.0 };
                Some((col, sign))
            }
            Cmp::Eq => None,
        };
        // A row provides its own basic column only when, after negation,
        // the slack coefficient is +1 (i.e. an effective Le row).
        let self_basic = matches!(eff_cmp, Cmp::Le) && slack.is_some();
        need_artificial.push(!self_basic);
        metas.push(RowMeta { slack, negate });
    }
    let n_art = need_artificial.iter().filter(|&&b| b).count();
    let cols = cols_noart + n_art;

    let w = cols + 1;
    let mut a = vec![0.0; m * w];
    let mut basis = vec![usize::MAX; m];
    let mut art_next = cols_noart;
    let n_model_rows = model.constraints.len();
    let mut dual_probe = Vec::with_capacity(n_model_rows);
    for (ri, (row, meta)) in rows.iter().zip(&metas).enumerate() {
        let sgn = if meta.negate { -1.0 } else { 1.0 };
        for &(ci, coeff) in &row.terms {
            a[ri * w + ci] += sgn * coeff;
        }
        if let Some((col, ssign)) = meta.slack {
            a[ri * w + col] = sgn * ssign;
        }
        a[ri * w + cols] = sgn * row.rhs;
        debug_assert!(a[ri * w + cols] >= -1e-12);
        let mut art_col = None;
        if need_artificial[ri] {
            a[ri * w + art_next] = 1.0;
            basis[ri] = art_next;
            art_col = Some(art_next);
            art_next += 1;
        } else {
            let (col, _) = meta.slack.expect("self-basic rows have slacks");
            basis[ri] = col;
        }
        // Dual probe for model rows: the reduced cost of a column with a
        // single non-zero in this row reveals the dual. Slack columns have
        // tableau coefficient sgn·ssign; artificials have +1.
        if ri < n_model_rows {
            match (meta.slack, art_col) {
                (Some((col, ssign)), _) => dual_probe.push((col, -1.0 / ssign)),
                (None, Some(col)) => dual_probe.push((col, -sgn)),
                (None, None) => unreachable!("every row has a slack or an artificial"),
            }
        }
    }

    let tableau = Tableau {
        a,
        rows: m,
        cols,
        basis,
        cost: vec![0.0; w],
    };
    StandardForm {
        tableau,
        n_struct,
        shifts,
        obj,
        obj_flip,
        art_start: cols_noart,
        dual_probe,
    }
}

impl Model {
    /// Solves the LP relaxation (integrality flags ignored) with default
    /// options.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`] or
    /// [`LpError::IterationLimit`].
    pub fn solve_lp(&self) -> Result<Solution, LpError> {
        self.solve_lp_with(SimplexOptions::default())
    }

    /// Solves the LP relaxation with explicit solver options.
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`] or
    /// [`LpError::IterationLimit`].
    pub fn solve_lp_with(&self, opts: SimplexOptions) -> Result<Solution, LpError> {
        let start = Instant::now();
        let mut sf = build_standard_form(self);
        let t = &mut sf.tableau;
        let tol = opts.tolerance;
        let max_pivots = if opts.max_pivots == 0 {
            200 * (t.rows + t.cols) + 10_000
        } else {
            opts.max_pivots
        };
        let bland_after = if opts.bland_after == 0 {
            20 * t.rows + 200
        } else {
            opts.bland_after
        };
        let mut pivots = 0usize;

        // ---- Phase 1: minimise the sum of artificials. ----
        let has_artificials = t.cols > sf.art_start;
        let mut phase1_pivots = 0usize;
        let mut phase1_elapsed = std::time::Duration::ZERO;
        if has_artificials {
            // cost = sum of artificial columns ⇒ reduced cost row is
            // -(sum of rows whose basis is artificial).
            let w = t.cols + 1;
            let mut cost = vec![0.0; w];
            #[allow(clippy::needless_range_loop)] // index form mirrors the math
            for c in sf.art_start..t.cols {
                cost[c] = 1.0;
            }
            // Price out basic artificials.
            for r in 0..t.rows {
                if t.basis[r] >= sf.art_start {
                    #[allow(clippy::needless_range_loop)] // cost[c] -= A[r][c]
                    for c in 0..w {
                        cost[c] -= t.at(r, c);
                    }
                }
            }
            t.cost = cost;
            run_phase(t, tol, max_pivots, bland_after, &mut pivots, t.cols)?;
            phase1_pivots = pivots;
            let phase1_obj = -t.cost[t.cols];
            if phase1_obj > 1e-7 {
                return Err(LpError::Infeasible);
            }
            // Drive artificials out of the basis where possible.
            for r in 0..t.rows {
                if t.basis[r] >= sf.art_start {
                    let piv = (0..sf.art_start).find(|&c| t.at(r, c).abs() > 1e-7);
                    if let Some(c) = piv {
                        t.pivot(r, c);
                        pivots += 1;
                    }
                    // Rows still basic in an artificial are redundant
                    // (zero row); leaving them is harmless because the
                    // artificial stays at value ~0 and phase 2 restricts
                    // entering columns to non-artificials.
                }
            }
            phase1_elapsed = start.elapsed();
        }

        // ---- Phase 2: original objective. ----
        let w = t.cols + 1;
        let mut cost = vec![0.0; w];
        cost[..sf.n_struct].copy_from_slice(&sf.obj);
        // Price out the current basis.
        for r in 0..t.rows {
            let b = t.basis[r];
            let cb = if b < sf.n_struct { sf.obj[b] } else { 0.0 };
            if cb != 0.0 {
                #[allow(clippy::needless_range_loop)] // cost[c] -= c_B * A[r][c]
                for c in 0..w {
                    cost[c] -= cb * t.at(r, c);
                }
            }
        }
        t.cost = cost;
        run_phase(t, tol, max_pivots, bland_after, &mut pivots, sf.art_start)?;

        // Extract solution.
        let mut x = sf.shifts.clone();
        for r in 0..t.rows {
            let b = t.basis[r];
            if b < sf.n_struct {
                x[b] += t.rhs(r);
            }
        }
        let objective = self.objective_of(&x);
        let _ = sf.obj_flip; // direction already folded into sf.obj
                             // Dual extraction: each model row's multiplier from the final
                             // reduced cost of its probe column (see StandardForm::dual_probe).
                             // Duals are reported for the min-oriented problem; for Max models
                             // callers negate.
        let duals: Vec<f64> = sf
            .dual_probe
            .iter()
            .map(|&(col, mult)| mult * t.cost[col])
            .collect();
        let stats = SolveStats {
            pivots,
            phase1_pivots,
            elapsed: start.elapsed(),
            phase1_elapsed,
        };
        let mut sol = Solution::new(x, objective, stats);
        sol.set_duals(duals);
        Ok(sol)
    }
}

/// Runs simplex iterations until optimality, unboundedness or limits.
/// `allowed` restricts entering columns to indices `< allowed` (used to
/// forbid artificials in phase 2).
fn run_phase(
    t: &mut Tableau,
    tol: f64,
    max_pivots: usize,
    bland_after: usize,
    pivots: &mut usize,
    allowed: usize,
) -> Result<(), LpError> {
    loop {
        if *pivots >= max_pivots {
            return Err(LpError::IterationLimit);
        }
        let bland = *pivots >= bland_after;
        let Some(col) = t.entering(tol, bland, allowed) else {
            return Ok(()); // optimal
        };
        let Some(row) = t.leaving(col, tol) else {
            return Err(LpError::Unbounded);
        };
        t.pivot(row, col);
        *pivots += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn trivial_min_at_bounds() {
        // min x, 0 <= x <= 5: optimum 0 without any constraint rows.
        let mut m = Model::new(Sense::Min);
        let _x = m.add_var("x", 0.0, 5.0, 1.0);
        let s = m.solve_lp().unwrap();
        assert_close(s.objective(), 0.0);
    }

    #[test]
    fn basic_max_problem() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 → (4,0), obj 12.
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 4.0)
            .unwrap();
        m.add_constraint([(x, 1.0), (y, 3.0)], Cmp::Le, 6.0)
            .unwrap();
        let s = m.solve_lp().unwrap();
        assert_close(s.objective(), 12.0);
        assert_close(s.value(x), 4.0);
        assert_close(s.value(y), 0.0);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2 → x=10? obj: min 2x+3y with
        // y=0, x=10 → 20.
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 2.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0)
            .unwrap();
        let s = m.solve_lp().unwrap();
        assert_close(s.objective(), 20.0);
        assert_close(s.value(x), 10.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y == 4, x - y == 1 → y=1, x=2, obj 3.
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0), (y, 2.0)], Cmp::Eq, 4.0)
            .unwrap();
        m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0)
            .unwrap();
        let s = m.solve_lp().unwrap();
        assert_close(s.value(x), 2.0);
        assert_close(s.value(y), 1.0);
        assert_close(s.objective(), 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 5.0).unwrap();
        assert_eq!(m.solve_lp(), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Max);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 1.0).unwrap();
        assert_eq!(m.solve_lp(), Err(LpError::Unbounded));
    }

    #[test]
    fn negative_rhs_handled() {
        // x - y <= -2 with min x, y <= 3 → x >= y - ... : feasible needs
        // y >= x + 2; min x = 0 with y in [2,3].
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, 3.0, 0.0);
        m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Le, -2.0)
            .unwrap();
        let s = m.solve_lp().unwrap();
        assert_close(s.value(x), 0.0);
        assert!(s.value(y) >= 2.0 - 1e-7);
    }

    #[test]
    fn shifted_lower_bounds() {
        // min x + y with x >= 3, y >= 4, x + y >= 10 → obj 10.
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 3.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 4.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0)
            .unwrap();
        let s = m.solve_lp().unwrap();
        assert_close(s.objective(), 10.0);
        assert!(m.max_violation(s.values()) < 1e-7);
    }

    #[test]
    fn fixed_variable() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 2.5, 2.5, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0)
            .unwrap();
        let s = m.solve_lp().unwrap();
        assert_close(s.value(x), 2.5);
        assert_close(s.value(y), 1.5);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic cycling-prone example (Beale); Bland fallback must
        // terminate it.
        let mut m = Model::new(Sense::Min);
        let x1 = m.add_var("x1", 0.0, f64::INFINITY, -0.75);
        let x2 = m.add_var("x2", 0.0, f64::INFINITY, 150.0);
        let x3 = m.add_var("x3", 0.0, f64::INFINITY, -0.02);
        let x4 = m.add_var("x4", 0.0, f64::INFINITY, 6.0);
        m.add_constraint(
            [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Cmp::Le,
            0.0,
        )
        .unwrap();
        m.add_constraint(
            [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Cmp::Le,
            0.0,
        )
        .unwrap();
        m.add_constraint([(x3, 1.0)], Cmp::Le, 1.0).unwrap();
        let s = m.solve_lp().unwrap();
        assert_close(s.objective(), -0.05);
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y == 2 stated twice: redundant row must not break phase 1.
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0)
            .unwrap();
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0)
            .unwrap();
        let s = m.solve_lp().unwrap();
        assert_close(s.objective(), 2.0);
        assert_close(s.value(x), 2.0);
    }

    #[test]
    fn duals_satisfy_strong_duality_on_covering_lp() {
        // min x + 2y s.t. x + y >= 3 → x=3, y=0, dual y1 = 1 (binding),
        // objective = y·b = 3.
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0)
            .unwrap();
        let s = m.solve_lp().unwrap();
        let duals = s.duals().expect("simplex solutions carry duals");
        assert_eq!(duals.len(), 1);
        assert_close(duals[0], 1.0);
        assert_close(duals[0] * 3.0, s.objective());
    }

    #[test]
    fn duals_zero_for_slack_constraints() {
        // min x s.t. x >= 1 (binding), x + 0y <= 100 (slack).
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 1.0).unwrap();
        m.add_constraint([(x, 1.0)], Cmp::Le, 100.0).unwrap();
        let s = m.solve_lp().unwrap();
        let duals = s.duals().unwrap();
        assert_close(duals[0], 1.0);
        assert_close(duals[1], 0.0); // complementary slackness
    }

    #[test]
    fn duals_for_equality_rows() {
        // min x + y s.t. x + y == 2 → binding equality with dual 1.
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0)
            .unwrap();
        let s = m.solve_lp().unwrap();
        let duals = s.duals().unwrap();
        assert_close(duals[0] * 2.0, s.objective());
    }

    #[test]
    fn duals_predict_objective_sensitivity() {
        // Perturb a binding RHS by eps; the objective must move by y·eps.
        let build = |rhs: f64| {
            let mut m = Model::new(Sense::Min);
            let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
            let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
            m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, rhs)
                .unwrap();
            m.add_constraint([(x, 1.0), (y, 2.0)], Cmp::Ge, 6.0)
                .unwrap();
            m
        };
        let base = build(5.0).solve_lp().unwrap();
        let dual = base.duals().unwrap()[0];
        let bumped = build(5.5).solve_lp().unwrap();
        assert_close(bumped.objective() - base.objective(), dual * 0.5);
    }

    #[test]
    fn solution_is_feasible_property() {
        // Deterministic pseudo-random LPs: whatever comes back must satisfy
        // all constraints to tolerance.
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        for trial in 0..20 {
            let mut m = Model::new(Sense::Min);
            let n = 3 + (trial % 4);
            let vars: Vec<_> = (0..n)
                .map(|i| m.add_var(format!("x{i}"), 0.0, 10.0, next()))
                .collect();
            for _ in 0..n {
                let terms: Vec<_> = vars.iter().map(|&v| (v, next())).collect();
                m.add_constraint(terms, Cmp::Ge, next() * 3.0).unwrap();
            }
            match m.solve_lp() {
                Ok(s) => assert!(
                    m.max_violation(s.values()) < 1e-6,
                    "trial {trial}: violation {}",
                    m.max_violation(s.values())
                ),
                Err(LpError::Infeasible) => {}
                Err(e) => panic!("trial {trial}: unexpected {e}"),
            }
        }
    }
}
