//! Solver results and error types.

use std::fmt;
use std::time::Duration;

/// Errors produced by the LP / MILP solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// A constraint referenced a variable index outside the model.
    UnknownVar(usize),
    /// A coefficient or right-hand side was NaN / infinite.
    BadCoefficient,
    /// The constraint set admits no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimisation direction.
    Unbounded,
    /// The pivot limit was exhausted before reaching optimality.
    IterationLimit,
    /// Branch-and-bound exhausted its node budget without proving
    /// optimality and no incumbent was found.
    NodeLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVar(i) => write!(f, "constraint references unknown variable #{i}"),
            LpError::BadCoefficient => write!(f, "non-finite coefficient or right-hand side"),
            LpError::Infeasible => write!(f, "problem is infeasible"),
            LpError::Unbounded => write!(f, "objective is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
            LpError::NodeLimit => write!(f, "branch-and-bound node limit reached"),
        }
    }
}

impl std::error::Error for LpError {}

/// Statistics of a single simplex run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Total pivots across both phases.
    pub pivots: usize,
    /// Pivots spent in phase 1 (finding a feasible basis).
    pub phase1_pivots: usize,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// Wall-clock time spent in phase 1 (zero when the initial basis was
    /// already feasible).
    pub phase1_elapsed: Duration,
}

impl SolveStats {
    /// Records this run's pivots and per-phase timings under `prefix`
    /// (conventionally `"lp"`): counters `<prefix>.pivots`,
    /// `<prefix>.phase1_pivots` and `<prefix>.solves`, plus millisecond
    /// histograms `<prefix>.phase1_ms` and `<prefix>.phase2_ms`.
    pub fn record(&self, rec: &dyn apple_telemetry::Recorder, prefix: &str) {
        if !rec.enabled() {
            return;
        }
        rec.counter(&format!("{prefix}.pivots"), self.pivots as u64);
        rec.counter(
            &format!("{prefix}.phase1_pivots"),
            self.phase1_pivots as u64,
        );
        rec.counter(&format!("{prefix}.solves"), 1);
        rec.observe_duration(&format!("{prefix}.phase1_ms"), self.phase1_elapsed);
        rec.observe_duration(
            &format!("{prefix}.phase2_ms"),
            self.elapsed.saturating_sub(self.phase1_elapsed),
        );
    }
}

/// An optimal (or incumbent) solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    values: Vec<f64>,
    objective: f64,
    stats: SolveStats,
    duals: Option<Vec<f64>>,
}

impl Solution {
    pub(crate) fn new(values: Vec<f64>, objective: f64, stats: SolveStats) -> Self {
        Solution {
            values,
            objective,
            stats,
            duals: None,
        }
    }

    pub(crate) fn set_duals(&mut self, duals: Vec<f64>) {
        self.duals = Some(duals);
    }

    /// Builds a solution from parts assembled outside the simplex — used by
    /// [`decompose`](crate::decompose) to merge block optima and by callers
    /// that lift reduced-space solutions back to an original model.
    ///
    /// The caller is responsible for `objective` matching `values` under the
    /// intended model (use [`Model::objective_of`](crate::Model::objective_of)).
    pub fn assemble(values: Vec<f64>, objective: f64, stats: SolveStats) -> Self {
        Solution::new(values, objective, stats)
    }

    /// Attaches dual values (one per constraint of the intended model), in
    /// builder style. See [`Solution::duals`] for the sign convention.
    #[must_use]
    pub fn with_duals(mut self, duals: Vec<f64>) -> Self {
        self.duals = Some(duals);
        self
    }

    /// Dual values (Lagrange multipliers), one per model constraint in
    /// insertion order, reported for the **min-oriented** problem (negate
    /// for `Sense::Max` models). `None` for solutions that did not come
    /// from a direct simplex solve (e.g. branch-and-bound incumbents or
    /// presolve-lifted solutions).
    ///
    /// Sign convention: at optimality, tightening a `Ge` constraint's
    /// right-hand side by `ε` increases the optimum by `y·ε` with `y ≥ 0`;
    /// `Le` constraints have `y ≤ 0`.
    pub fn duals(&self) -> Option<&[f64]> {
        self.duals.as_deref()
    }

    /// Value assigned to variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the solved model.
    pub fn value(&self, v: crate::model::Var) -> f64 {
        self.values[v.index()]
    }

    /// Dense assignment vector indexed by variable index.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value at this assignment (in the model's original sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Solver statistics.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    pub(crate) fn stats_mut(&mut self) -> &mut SolveStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Var;

    #[test]
    fn accessors() {
        let s = Solution::new(vec![1.0, 2.0], 5.0, SolveStats::default());
        assert_eq!(s.value(Var(1)), 2.0);
        assert_eq!(s.values(), &[1.0, 2.0]);
        assert_eq!(s.objective(), 5.0);
        assert_eq!(s.stats().pivots, 0);
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::UnknownVar(7).to_string().contains("#7"));
    }
}
