//! Model inspection helpers: size statistics and a human-readable
//! `Display` for debugging the engine's generated formulations.

use crate::model::{Cmp, Model};
use std::fmt;

/// Size statistics of a model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Total decision variables.
    pub vars: usize,
    /// Variables flagged integer.
    pub int_vars: usize,
    /// Constraint rows.
    pub rows: usize,
    /// `≤` rows.
    pub le_rows: usize,
    /// `≥` rows.
    pub ge_rows: usize,
    /// `=` rows.
    pub eq_rows: usize,
    /// Non-zero coefficients across all rows.
    pub nonzeros: usize,
}

impl ModelStats {
    /// Fill density: non-zeros / (rows × vars); 0 for empty models.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.vars == 0 {
            0.0
        } else {
            self.nonzeros as f64 / (self.rows * self.vars) as f64
        }
    }
}

impl Model {
    /// Computes size statistics.
    pub fn stats(&self) -> ModelStats {
        let mut s = ModelStats {
            vars: self.vars.len(),
            int_vars: self.vars.iter().filter(|v| v.integer).count(),
            rows: self.constraints.len(),
            ..Default::default()
        };
        for c in &self.constraints {
            match c.cmp {
                Cmp::Le => s.le_rows += 1,
                Cmp::Ge => s.ge_rows += 1,
                Cmp::Eq => s.eq_rows += 1,
            }
            s.nonzeros += c.expr.normalized().terms().len();
        }
        s
    }
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vars ({} integer), {} rows ({}<= {}>= {}=), {} non-zeros ({:.2}% dense)",
            self.vars,
            self.int_vars,
            self.rows,
            self.le_rows,
            self.ge_rows,
            self.eq_rows,
            self.nonzeros,
            self.density() * 100.0
        )
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Model[{}]", self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn stats_count_everything() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let q = m.add_int_var("q", 0.0, 9.0, 1.0);
        m.add_constraint([(x, 1.0), (q, 2.0)], Cmp::Le, 3.0)
            .unwrap();
        m.add_constraint([(x, 1.0)], Cmp::Ge, 0.5).unwrap();
        m.add_constraint([(q, 1.0)], Cmp::Eq, 2.0).unwrap();
        let s = m.stats();
        assert_eq!(s.vars, 2);
        assert_eq!(s.int_vars, 1);
        assert_eq!(s.rows, 3);
        assert_eq!((s.le_rows, s.ge_rows, s.eq_rows), (1, 1, 1));
        assert_eq!(s.nonzeros, 4);
        assert!((s.density() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn zero_coefficients_dropped_from_nonzeros() {
        let mut m = Model::new(Sense::Min);
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 0.0)], Cmp::Le, 1.0)
            .unwrap();
        assert_eq!(m.stats().nonzeros, 1);
    }

    #[test]
    fn display_is_informative() {
        let mut m = Model::new(Sense::Max);
        let _ = m.add_var("x", 0.0, 1.0, 1.0);
        let text = m.to_string();
        assert!(text.contains("1 vars"));
        assert!(text.contains("0 rows"));
    }

    #[test]
    fn empty_model_density_zero() {
        let m = Model::new(Sense::Min);
        assert_eq!(m.stats().density(), 0.0);
    }
}
