//! Randomised (but fully deterministic) tests for the simplex and
//! branch-and-bound solvers, driven by seeded `apple_rng` streams — see
//! `tests/README.md` for the seeding convention.
//!
//! The key invariants:
//! 1. any solution returned by `solve_lp` satisfies every constraint and
//!    bound (feasibility),
//! 2. the LP optimum is a valid bound for the ILP optimum (relaxation),
//! 3. `solve_ilp` returns integral values for integer variables,
//! 4. on covering-style problems (the shape APPLE generates) the LP
//!    objective never exceeds the ILP objective for minimisation.

use apple_lp::{BranchConfig, Cmp, LpError, Model, Sense};
use apple_rng::{Rng, SeedableRng, StdRng};

/// Base seed for this file; each case perturbs it by its index so any
/// failing case can be re-run in isolation.
const SEED: u64 = 0x4c50_c0de;
const CASES: u64 = 64;

/// A generated covering problem: min Σ c_j x_j s.t. A x >= b, 0 <= x <= ub.
#[derive(Debug, Clone)]
struct Covering {
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    upper: f64,
}

fn covering(rng: &mut StdRng) -> Covering {
    let n = rng.gen_range(2usize..6);
    let m = rng.gen_range(1usize..6);
    let costs = (0..n).map(|_| rng.gen_range(0.1..10.0)).collect();
    let rows = (0..m)
        .map(|_| {
            let coeffs = (0..n).map(|_| rng.gen_range(0.0..5.0)).collect();
            (coeffs, rng.gen_range(0.0..8.0))
        })
        .collect();
    Covering {
        costs,
        rows,
        upper: rng.gen_range(1.0..30.0),
    }
}

fn build(c: &Covering, integer: bool) -> Model {
    let mut model = Model::new(Sense::Min);
    let vars: Vec<_> = c
        .costs
        .iter()
        .enumerate()
        .map(|(i, &cost)| {
            if integer {
                model.add_int_var(format!("x{i}"), 0.0, c.upper, cost)
            } else {
                model.add_var(format!("x{i}"), 0.0, c.upper, cost)
            }
        })
        .collect();
    for (coeffs, rhs) in &c.rows {
        let terms: Vec<_> = vars.iter().zip(coeffs).map(|(&v, &k)| (v, k)).collect();
        model
            .add_constraint(terms, Cmp::Ge, *rhs)
            .expect("finite coefficients");
    }
    model
}

#[test]
fn lp_solutions_are_feasible() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(SEED ^ case);
        let c = covering(&mut rng);
        let model = build(&c, false);
        match model.solve_lp() {
            Ok(sol) => {
                assert!(
                    model.max_violation(sol.values()) < 1e-6,
                    "case {case}: violation {}",
                    model.max_violation(sol.values())
                );
                // Objective must agree with the assignment.
                let recomputed = model.objective_of(sol.values());
                assert!(
                    (recomputed - sol.objective()).abs() < 1e-6,
                    "case {case}: objective mismatch"
                );
            }
            Err(LpError::Infeasible) => {
                // Acceptable: a row may demand more than upper bounds allow.
            }
            Err(e) => panic!("case {case}: unexpected error {e}"),
        }
    }
}

#[test]
fn ilp_is_integral_and_bounded_by_lp() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x100 + case));
        let c = covering(&mut rng);
        let lp_model = build(&c, false);
        let ilp_model = build(&c, true);
        let lp = lp_model.solve_lp();
        let ilp = ilp_model.solve_ilp(BranchConfig::default());
        match (lp, ilp) {
            (Ok(lp), Ok((ilp, _))) => {
                // Relaxation bound.
                assert!(
                    ilp.objective() >= lp.objective() - 1e-6,
                    "case {case}: ilp {} < lp {}",
                    ilp.objective(),
                    lp.objective()
                );
                // Integrality.
                for v in ilp_model.integer_vars() {
                    let x = ilp.value(v);
                    assert!((x - x.round()).abs() < 1e-5, "case {case}: fractional {x}");
                }
                // Feasibility of the integral point.
                assert!(ilp_model.max_violation(ilp.values()) < 1e-6, "case {case}");
            }
            (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
            (Ok(_), Err(LpError::Infeasible)) => {
                // LP feasible but no integer point within bounds: possible
                // when upper bounds are tight and fractional.
            }
            (lp, ilp) => panic!("case {case}: inconsistent lp={lp:?} ilp={ilp:?}"),
        }
    }
}

#[test]
fn ceiling_rounding_is_feasible_when_slack_allows() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x200 + case));
        let c = covering(&mut rng);
        // APPLE's rounding step ceils the fractional q; for pure covering
        // constraints (non-negative coefficients) ceiling can only help.
        let model = build(&c, false);
        if let Ok(sol) = model.solve_lp() {
            let rounded: Vec<f64> = sol.values().iter().map(|x| x.ceil()).collect();
            let ok_bounds = rounded.iter().all(|&x| x <= c.upper + 1e-9);
            if ok_bounds {
                // Every Ge row with non-negative coefficients stays satisfied.
                assert!(model.max_violation(&rounded) < 1e-6, "case {case}");
            }
        }
    }
}
