//! Property-based tests for the simplex and branch-and-bound solvers.
//!
//! The key invariants:
//! 1. any solution returned by `solve_lp` satisfies every constraint and
//!    bound (feasibility),
//! 2. the LP optimum is a valid bound for the ILP optimum (relaxation),
//! 3. `solve_ilp` returns integral values for integer variables,
//! 4. on covering-style problems (the shape APPLE generates) the LP
//!    objective never exceeds the ILP objective for minimisation.

use apple_lp::{BranchConfig, Cmp, LpError, Model, Sense};
use proptest::prelude::*;

/// A generated covering problem: min Σ c_j x_j s.t. A x >= b, 0 <= x <= ub.
#[derive(Debug, Clone)]
struct Covering {
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    upper: f64,
}

fn covering_strategy() -> impl Strategy<Value = Covering> {
    let n = 2usize..6;
    let m = 1usize..6;
    (n, m).prop_flat_map(|(n, m)| {
        let costs = proptest::collection::vec(0.1f64..10.0, n);
        let rows = proptest::collection::vec(
            (
                proptest::collection::vec(0.0f64..5.0, n),
                0.0f64..8.0,
            ),
            m,
        );
        (costs, rows, 1.0f64..30.0).prop_map(|(costs, rows, upper)| Covering {
            costs,
            rows,
            upper,
        })
    })
}

fn build(c: &Covering, integer: bool) -> Model {
    let mut model = Model::new(Sense::Min);
    let vars: Vec<_> = c
        .costs
        .iter()
        .enumerate()
        .map(|(i, &cost)| {
            if integer {
                model.add_int_var(format!("x{i}"), 0.0, c.upper, cost)
            } else {
                model.add_var(format!("x{i}"), 0.0, c.upper, cost)
            }
        })
        .collect();
    for (coeffs, rhs) in &c.rows {
        let terms: Vec<_> = vars.iter().zip(coeffs).map(|(&v, &k)| (v, k)).collect();
        model
            .add_constraint(terms, Cmp::Ge, *rhs)
            .expect("finite coefficients");
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lp_solutions_are_feasible(c in covering_strategy()) {
        let model = build(&c, false);
        match model.solve_lp() {
            Ok(sol) => {
                prop_assert!(model.max_violation(sol.values()) < 1e-6,
                    "violation {}", model.max_violation(sol.values()));
                // Objective must agree with the assignment.
                let recomputed = model.objective_of(sol.values());
                prop_assert!((recomputed - sol.objective()).abs() < 1e-6);
            }
            Err(LpError::Infeasible) => {
                // Acceptable: a row may demand more than upper bounds allow.
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn ilp_is_integral_and_bounded_by_lp(c in covering_strategy()) {
        let lp_model = build(&c, false);
        let ilp_model = build(&c, true);
        let lp = lp_model.solve_lp();
        let ilp = ilp_model.solve_ilp(BranchConfig::default());
        match (lp, ilp) {
            (Ok(lp), Ok((ilp, _))) => {
                // Relaxation bound.
                prop_assert!(ilp.objective() >= lp.objective() - 1e-6,
                    "ilp {} < lp {}", ilp.objective(), lp.objective());
                // Integrality.
                for v in ilp_model.integer_vars() {
                    let x = ilp.value(v);
                    prop_assert!((x - x.round()).abs() < 1e-5, "fractional {x}");
                }
                // Feasibility of the integral point.
                prop_assert!(ilp_model.max_violation(ilp.values()) < 1e-6);
            }
            (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
            (Ok(_), Err(LpError::Infeasible)) => {
                // LP feasible but no integer point within bounds: possible
                // when upper bounds are tight and fractional.
            }
            (lp, ilp) => prop_assert!(false, "inconsistent: lp={lp:?} ilp={ilp:?}"),
        }
    }

    #[test]
    fn ceiling_rounding_is_feasible_when_slack_allows(c in covering_strategy()) {
        // APPLE's rounding step ceils the fractional q; for pure covering
        // constraints (non-negative coefficients) ceiling can only help.
        let model = build(&c, false);
        if let Ok(sol) = model.solve_lp() {
            let rounded: Vec<f64> = sol.values().iter().map(|x| x.ceil()).collect();
            let ok_bounds = rounded.iter().all(|&x| x <= c.upper + 1e-9);
            if ok_bounds {
                // Every Ge row with non-negative coefficients stays satisfied.
                prop_assert!(model.max_violation(&rounded) < 1e-6);
            }
        }
    }
}
