//! The VNF catalog — Table IV of the paper, plus resource vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// The four network function types used throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NfType {
    /// Stateless packet filter (ClickOS, 4 cores, 900 Mbps).
    Firewall,
    /// Web proxy (ordinary VM, 4 cores, 900 Mbps).
    Proxy,
    /// Network address translation (ClickOS, 2 cores, 900 Mbps).
    Nat,
    /// Intrusion detection system (ordinary VM, 8 cores, 600 Mbps).
    Ids,
}

impl NfType {
    /// All catalog entries in a stable order.
    pub fn all() -> [NfType; 4] {
        [NfType::Firewall, NfType::Proxy, NfType::Nat, NfType::Ids]
    }

    /// Dense index (0..4) for table lookups.
    pub fn index(self) -> usize {
        match self {
            NfType::Firewall => 0,
            NfType::Proxy => 1,
            NfType::Nat => 2,
            NfType::Ids => 3,
        }
    }

    /// Inverse of [`NfType::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn from_index(i: usize) -> NfType {
        Self::all()[i]
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            NfType::Firewall => "Firewall",
            NfType::Proxy => "Proxy",
            NfType::Nat => "NAT",
            NfType::Ids => "IDS",
        }
    }
}

impl fmt::Display for NfType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A hardware resource requirement / availability vector — the paper's
/// `R_n` and `A_v`. Components are CPU cores and memory.
///
/// # Example
///
/// ```
/// use apple_nf::ResourceVector;
///
/// let host = ResourceVector::new(64, 131_072);
/// let vnf = ResourceVector::new(4, 2_048);
/// assert!(vnf.fits_in(&host));
/// assert_eq!((host - vnf).cores, 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct ResourceVector {
    /// CPU cores.
    pub cores: u32,
    /// Memory in MiB.
    pub memory_mib: u32,
}

impl ResourceVector {
    /// Creates a resource vector.
    pub fn new(cores: u32, memory_mib: u32) -> Self {
        ResourceVector { cores, memory_mib }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Component-wise `self ≤ other`.
    pub fn fits_in(&self, other: &ResourceVector) -> bool {
        self.cores <= other.cores && self.memory_mib <= other.memory_mib
    }

    /// Component-wise saturating subtraction.
    pub fn saturating_sub(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            cores: self.cores.saturating_sub(rhs.cores),
            memory_mib: self.memory_mib.saturating_sub(rhs.memory_mib),
        }
    }

    /// Scales the vector by an instance count.
    pub fn times(self, k: u32) -> ResourceVector {
        ResourceVector {
            cores: self.cores * k,
            memory_mib: self.memory_mib * k,
        }
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            cores: self.cores + rhs.cores,
            memory_mib: self.memory_mib + rhs.memory_mib,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;
    /// # Panics
    ///
    /// Panics (in debug) on underflow; use
    /// [`ResourceVector::saturating_sub`] when the result may be negative.
    fn sub(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            cores: self.cores - rhs.cores,
            memory_mib: self.memory_mib - rhs.memory_mib,
        }
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}c/{}MiB", self.cores, self.memory_mib)
    }
}

/// The data-sheet of one VNF type — one row of Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VnfSpec {
    /// Which NF this describes.
    pub nf: NfType,
    /// CPU cores required per instance (`R_n`).
    pub cores: u32,
    /// Memory per instance in MiB (not in Table IV; sized so cores are the
    /// binding resource, as in the paper's 64-core-host experiments).
    pub memory_mib: u32,
    /// Throughput capacity per instance in Mbps (`Cap_n`).
    pub capacity_mbps: f64,
    /// Whether the NF runs in a ClickOS unikernel (fast boot / reconfig).
    pub clickos: bool,
}

impl VnfSpec {
    /// Returns the Table IV row for `nf`.
    pub fn of(nf: NfType) -> VnfSpec {
        match nf {
            NfType::Firewall => VnfSpec {
                nf,
                cores: 4,
                memory_mib: 1024,
                capacity_mbps: 900.0,
                clickos: true,
            },
            NfType::Proxy => VnfSpec {
                nf,
                cores: 4,
                memory_mib: 4096,
                capacity_mbps: 900.0,
                clickos: false,
            },
            NfType::Nat => VnfSpec {
                nf,
                cores: 2,
                memory_mib: 512,
                capacity_mbps: 900.0,
                clickos: true,
            },
            NfType::Ids => VnfSpec {
                nf,
                cores: 8,
                memory_mib: 8192,
                capacity_mbps: 600.0,
                clickos: false,
            },
        }
    }

    /// The full catalog in [`NfType::all`] order.
    pub fn catalog() -> [VnfSpec; 4] {
        [
            VnfSpec::of(NfType::Firewall),
            VnfSpec::of(NfType::Proxy),
            VnfSpec::of(NfType::Nat),
            VnfSpec::of(NfType::Ids),
        ]
    }

    /// Resource requirement vector `R_n`.
    pub fn resources(&self) -> ResourceVector {
        ResourceVector::new(self.cores, self.memory_mib)
    }

    /// Whether this NF rewrites packet headers (source NAT does). §X of
    /// the paper: such NFs invalidate prefix-based sub-class
    /// classification downstream, requiring global sub-class tags.
    pub fn rewrites_headers(&self) -> bool {
        matches!(self.nf, NfType::Nat)
    }

    /// Capacity in packets per second assuming `packet_bytes`-byte packets
    /// (the paper's prototype uses 1500 B UDP packets).
    pub fn capacity_pps(&self, packet_bytes: u32) -> f64 {
        self.capacity_mbps * 1e6 / (f64::from(packet_bytes) * 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_rows() {
        let fw = VnfSpec::of(NfType::Firewall);
        assert_eq!((fw.cores, fw.capacity_mbps, fw.clickos), (4, 900.0, true));
        let px = VnfSpec::of(NfType::Proxy);
        assert_eq!((px.cores, px.capacity_mbps, px.clickos), (4, 900.0, false));
        let nat = VnfSpec::of(NfType::Nat);
        assert_eq!(
            (nat.cores, nat.capacity_mbps, nat.clickos),
            (2, 900.0, true)
        );
        let ids = VnfSpec::of(NfType::Ids);
        assert_eq!(
            (ids.cores, ids.capacity_mbps, ids.clickos),
            (8, 600.0, false)
        );
    }

    #[test]
    fn index_roundtrip() {
        for nf in NfType::all() {
            assert_eq!(NfType::from_index(nf.index()), nf);
        }
    }

    #[test]
    fn resource_vector_arithmetic() {
        let a = ResourceVector::new(8, 100);
        let b = ResourceVector::new(3, 40);
        assert_eq!(a + b, ResourceVector::new(11, 140));
        assert_eq!(a - b, ResourceVector::new(5, 60));
        assert_eq!(b.saturating_sub(a), ResourceVector::zero());
        assert_eq!(b.times(3), ResourceVector::new(9, 120));
        assert!(b.fits_in(&a));
        assert!(!a.fits_in(&b));
    }

    #[test]
    fn capacity_pps_for_1500b() {
        // 900 Mbps at 1500 B = 75 Kpps.
        let fw = VnfSpec::of(NfType::Firewall);
        assert!((fw.capacity_pps(1500) - 75_000.0).abs() < 1.0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(NfType::Ids.to_string(), "IDS");
        assert_eq!(ResourceVector::new(4, 1024).to_string(), "4c/1024MiB");
    }

    #[test]
    fn only_nat_rewrites_headers() {
        assert!(VnfSpec::of(NfType::Nat).rewrites_headers());
        assert!(!VnfSpec::of(NfType::Firewall).rewrites_headers());
        assert!(!VnfSpec::of(NfType::Ids).rewrites_headers());
        assert!(!VnfSpec::of(NfType::Proxy).rewrites_headers());
    }

    #[test]
    fn catalog_covers_all_types() {
        let cat = VnfSpec::catalog();
        assert_eq!(cat.len(), 4);
        for (spec, nf) in cat.iter().zip(NfType::all()) {
            assert_eq!(spec.nf, nf);
        }
    }
}
