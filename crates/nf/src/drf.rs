//! Dominant Resource Fairness for VNF instances sharing an APPLE host —
//! the §X extension ("to integrate a max-min fair multi-resource scheduler
//! \[25\] for policy enforcement would be our future work").
//!
//! Hypervisors schedule CPU and memory independently and statically; when
//! VNF instances contend for multiple resources (CPU cycles, memory
//! bandwidth, NIC bandwidth) a max-min fair allocation over *dominant
//! shares* (DRF, Ghodsi et al.) gives each instance the largest possible
//! share of its bottleneck resource without starving others.
//!
//! [`drf_allocate`] computes the continuous (fluid) DRF allocation by
//! water-filling: scale every demand vector by a common dominant-share
//! level until some resource saturates, freeze the saturated users, and
//! continue with the rest.

/// A demand vector: how much of each resource one unit of an instance's
/// work consumes. Resources are positional (e.g. `[cpu, memory, nic]`).
pub type Demand = Vec<f64>;

/// Result of a DRF allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct DrfAllocation {
    /// Work units granted per instance (same order as the demands).
    pub units: Vec<f64>,
    /// Dominant share per instance (fraction of its bottleneck resource).
    pub dominant_shares: Vec<f64>,
    /// Resource utilisation after allocation, per resource.
    pub utilisation: Vec<f64>,
}

/// Computes the continuous DRF allocation for `demands` under `capacity`.
///
/// Instances with all-zero demand receive zero units. Demands and
/// capacities must be non-negative and dimensions must agree.
///
/// # Panics
///
/// Panics if dimensions disagree, any value is negative/non-finite, or
/// `capacity` has a zero entry while some demand needs that resource.
///
/// # Example
///
/// ```
/// use apple_nf::drf::drf_allocate;
///
/// // The classic DRF example: 9 CPUs & 18 GB; user A needs <1 CPU, 4 GB>
/// // per task, user B <3 CPU, 1 GB>. DRF gives A 3 tasks and B 2 tasks
/// // (equal dominant shares of 2/3).
/// let alloc = drf_allocate(&[vec![1.0, 4.0], vec![3.0, 1.0]], &[9.0, 18.0]);
/// assert!((alloc.units[0] - 3.0).abs() < 1e-9);
/// assert!((alloc.units[1] - 2.0).abs() < 1e-9);
/// ```
pub fn drf_allocate(demands: &[Demand], capacity: &[f64]) -> DrfAllocation {
    let r = capacity.len();
    for (i, d) in demands.iter().enumerate() {
        assert_eq!(d.len(), r, "demand {i} has wrong dimension");
        assert!(
            d.iter().all(|&x| x.is_finite() && x >= 0.0),
            "demand {i} has invalid entries"
        );
    }
    assert!(
        capacity.iter().all(|&c| c.is_finite() && c >= 0.0),
        "capacity has invalid entries"
    );
    for (k, &c) in capacity.iter().enumerate() {
        if c == 0.0 {
            assert!(
                demands.iter().all(|d| d[k] == 0.0),
                "resource {k} has zero capacity but non-zero demand"
            );
        }
    }

    let n = demands.len();
    // Dominant demand per unit of work: max_k d_ik / C_k.
    let dominant: Vec<f64> = demands
        .iter()
        .map(|d| {
            d.iter()
                .zip(capacity)
                .filter(|(_, &c)| c > 0.0)
                .map(|(&x, &c)| x / c)
                .fold(0.0f64, f64::max)
        })
        .collect();

    let mut units = vec![0.0; n];
    let mut frozen = vec![false; n];
    let mut remaining: Vec<f64> = capacity.to_vec();
    // Users with zero dominant demand take nothing.
    for i in 0..n {
        if dominant[i] == 0.0 {
            frozen[i] = true;
        }
    }

    // Water-filling: raise the common dominant share s; user i consumes
    // (s / dominant_i) * d_ik of resource k. Find the level at which the
    // first resource saturates, freeze the users bound by it, repeat.
    let mut level = 0.0f64; // current dominant share of active users
    for _round in 0..n + 1 {
        let active: Vec<usize> = (0..n).filter(|&i| !frozen[i]).collect();
        if active.is_empty() {
            break;
        }
        // Per-resource consumption rate per unit of dominant-share level.
        let mut rate = vec![0.0f64; r];
        for &i in &active {
            for k in 0..r {
                rate[k] += demands[i][k] / dominant[i];
            }
        }
        // How much further can the level rise before a resource runs out?
        let mut delta = f64::INFINITY;
        for k in 0..r {
            if rate[k] > 1e-15 {
                delta = delta.min(remaining[k] / rate[k]);
            }
        }
        if !delta.is_finite() || delta <= 1e-15 {
            // Saturated: freeze everyone still active.
            for &i in &active {
                frozen[i] = true;
            }
            break;
        }
        level += delta;
        for k in 0..r {
            remaining[k] = (remaining[k] - delta * rate[k]).max(0.0);
        }
        for &i in &active {
            units[i] = level / dominant[i];
        }
        // Freeze users bound by a saturated resource.
        let saturated: Vec<usize> = (0..r)
            .filter(|&k| remaining[k] <= 1e-9 * capacity[k].max(1.0))
            .collect();
        if saturated.is_empty() {
            continue;
        }
        for &i in &active {
            if saturated.iter().any(|&k| demands[i][k] > 0.0) {
                frozen[i] = true;
            }
        }
    }

    let dominant_shares: Vec<f64> = (0..n).map(|i| units[i] * dominant[i]).collect();
    let utilisation: Vec<f64> = (0..r)
        .map(|k| {
            if capacity[k] > 0.0 {
                demands
                    .iter()
                    .zip(&units)
                    .map(|(d, &u)| d[k] * u)
                    .sum::<f64>()
                    / capacity[k]
            } else {
                0.0
            }
        })
        .collect();
    DrfAllocation {
        units,
        dominant_shares,
        utilisation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn classic_drf_example() {
        let alloc = drf_allocate(&[vec![1.0, 4.0], vec![3.0, 1.0]], &[9.0, 18.0]);
        assert!(close(alloc.units[0], 3.0), "{:?}", alloc);
        assert!(close(alloc.units[1], 2.0), "{:?}", alloc);
        // Equal dominant shares (2/3 each).
        assert!(close(alloc.dominant_shares[0], alloc.dominant_shares[1]));
    }

    #[test]
    fn single_user_takes_bottleneck() {
        let alloc = drf_allocate(&[vec![2.0, 1.0]], &[10.0, 10.0]);
        assert!(close(alloc.units[0], 5.0)); // CPU-bound
        assert!(close(alloc.utilisation[0], 1.0));
        assert!(alloc.utilisation[1] < 1.0);
    }

    #[test]
    fn identical_users_split_evenly() {
        let d = vec![vec![1.0, 1.0]; 4];
        let alloc = drf_allocate(&d, &[8.0, 8.0]);
        for u in &alloc.units {
            assert!(close(*u, 2.0));
        }
    }

    #[test]
    fn pareto_efficiency_some_resource_saturated() {
        let alloc = drf_allocate(
            &[vec![1.0, 2.0], vec![2.0, 1.0], vec![1.0, 1.0]],
            &[12.0, 12.0],
        );
        assert!(
            alloc.utilisation.iter().any(|&u| u > 0.999),
            "no resource saturated: {:?}",
            alloc.utilisation
        );
        // Feasibility.
        for &u in &alloc.utilisation {
            assert!(u <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn max_min_fairness_on_dominant_shares() {
        // A user's dominant share can exceed another's only if the other is
        // capped by its own bottleneck (here: all share both resources, so
        // shares equalise).
        let alloc = drf_allocate(
            &[vec![1.0, 3.0], vec![3.0, 1.0], vec![2.0, 2.0]],
            &[30.0, 30.0],
        );
        let s = &alloc.dominant_shares;
        assert!(close(s[0], s[1]) && close(s[1], s[2]), "{s:?}");
    }

    #[test]
    fn zero_demand_user_gets_zero() {
        let alloc = drf_allocate(&[vec![0.0, 0.0], vec![1.0, 1.0]], &[4.0, 4.0]);
        assert!(close(alloc.units[0], 0.0));
        assert!(close(alloc.units[1], 4.0));
    }

    #[test]
    fn asymmetric_freeze_releases_leftover() {
        // User A only needs CPU, user B only memory: both take all of their
        // resource.
        let alloc = drf_allocate(&[vec![1.0, 0.0], vec![0.0, 1.0]], &[6.0, 9.0]);
        assert!(close(alloc.units[0], 6.0));
        assert!(close(alloc.units[1], 9.0));
        assert!(close(alloc.utilisation[0], 1.0));
        assert!(close(alloc.utilisation[1], 1.0));
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn dimension_mismatch_panics() {
        drf_allocate(&[vec![1.0]], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn zero_capacity_with_demand_panics() {
        drf_allocate(&[vec![1.0, 1.0]], &[1.0, 0.0]);
    }
}
