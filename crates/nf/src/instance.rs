//! Running VNF instances: load accounting and hysteresis overload state.

use crate::catalog::{NfType, VnfSpec};
use crate::overload::OverloadModel;
use std::fmt;

/// Identifier of a VNF instance, unique within an orchestration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vnf{}", self.0)
    }
}

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceState {
    /// VM creation requested; not yet forwarding packets. Carries the
    /// simulation time (ms) at which boot completes.
    Booting { ready_at_ms: u64 },
    /// Forwarding packets, under the overload trip threshold.
    Running,
    /// Above the trip threshold; the Dynamic Handler has been notified.
    Overloaded,
    /// Torn down (e.g. a failover helper cancelled after roll-back).
    Cancelled,
}

/// One running (or booting) VNF instance — a VM on an APPLE host.
///
/// # Example
///
/// ```
/// use apple_nf::{InstanceId, NfType, VnfInstance};
///
/// let mut inst = VnfInstance::new(InstanceId(1), NfType::Firewall, 0);
/// inst.set_offered_pps(1_000.0);
/// assert!(inst.loss_rate() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct VnfInstance {
    id: InstanceId,
    nf: NfType,
    spec: VnfSpec,
    overload: OverloadModel,
    /// Switch index this instance's APPLE host hangs off.
    host_switch: usize,
    state: InstanceState,
    offered_pps: f64,
}

impl VnfInstance {
    /// Creates an instance in `Running` state attached to `host_switch`,
    /// with capacity/thresholds derived from the Table IV spec (1500 B
    /// packets).
    pub fn new(id: InstanceId, nf: NfType, host_switch: usize) -> VnfInstance {
        let spec = VnfSpec::of(nf);
        let overload = OverloadModel::for_capacity(spec.capacity_pps(1500));
        VnfInstance {
            id,
            nf,
            spec,
            overload,
            host_switch,
            state: InstanceState::Running,
            offered_pps: 0.0,
        }
    }

    /// Creates an instance that will finish booting at `ready_at_ms`.
    pub fn booting(id: InstanceId, nf: NfType, host_switch: usize, ready_at_ms: u64) -> Self {
        let mut inst = Self::new(id, nf, host_switch);
        inst.state = InstanceState::Booting { ready_at_ms };
        inst
    }

    /// Instance id.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// NF type.
    pub fn nf(&self) -> NfType {
        self.nf
    }

    /// Data-sheet for this instance's NF type.
    pub fn spec(&self) -> &VnfSpec {
        &self.spec
    }

    /// The switch whose APPLE host runs this instance.
    pub fn host_switch(&self) -> usize {
        self.host_switch
    }

    /// Current lifecycle state.
    pub fn state(&self) -> InstanceState {
        self.state
    }

    /// Overload model (capacity and thresholds).
    pub fn overload_model(&self) -> &OverloadModel {
        &self.overload
    }

    /// Current offered load in packets per second.
    pub fn offered_pps(&self) -> f64 {
        self.offered_pps
    }

    /// Marks boot complete (no-op unless `Booting`).
    pub fn finish_boot(&mut self) {
        if matches!(self.state, InstanceState::Booting { .. }) {
            self.state = InstanceState::Running;
        }
    }

    /// Cancels the instance (releases its resources at the orchestrator).
    pub fn cancel(&mut self) {
        self.state = InstanceState::Cancelled;
    }

    /// Updates the offered load and recomputes the hysteresis overload
    /// state. Returns `true` when this update *newly trips* overload —
    /// i.e. the moment an overloading notification would be sent to the
    /// Dynamic Handler.
    pub fn set_offered_pps(&mut self, pps: f64) -> bool {
        self.offered_pps = pps.max(0.0);
        match self.state {
            InstanceState::Running if self.overload.is_overloaded(self.offered_pps) => {
                self.state = InstanceState::Overloaded;
                true
            }
            InstanceState::Overloaded if self.overload.is_cleared(self.offered_pps) => {
                self.state = InstanceState::Running;
                false
            }
            _ => false,
        }
    }

    /// Loss rate at the current offered load (0 while booting — no traffic
    /// reaches a booting instance because rules are installed afterwards in
    /// the wait-for-boot strategy; the *naive* strategy models loss at the
    /// simulation layer instead).
    pub fn loss_rate(&self) -> f64 {
        match self.state {
            InstanceState::Booting { .. } | InstanceState::Cancelled => 0.0,
            _ => self.overload.loss_rate(self.offered_pps),
        }
    }

    /// Packets per second actually processed.
    pub fn goodput_pps(&self) -> f64 {
        self.offered_pps * (1.0 - self.loss_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_instance_is_running_and_idle() {
        let i = VnfInstance::new(InstanceId(1), NfType::Nat, 3);
        assert_eq!(i.state(), InstanceState::Running);
        assert_eq!(i.offered_pps(), 0.0);
        assert_eq!(i.host_switch(), 3);
        assert_eq!(i.nf(), NfType::Nat);
    }

    #[test]
    fn overload_trips_once() {
        let mut i = VnfInstance::new(InstanceId(2), NfType::Firewall, 0);
        let cap = i.overload_model().capacity_pps;
        assert!(i.set_offered_pps(cap)); // above 85 % trip
        assert_eq!(i.state(), InstanceState::Overloaded);
        // Staying overloaded does not re-notify.
        assert!(!i.set_offered_pps(cap * 1.1));
    }

    #[test]
    fn hysteresis_roll_back() {
        let mut i = VnfInstance::new(InstanceId(3), NfType::Firewall, 0);
        let m = *i.overload_model();
        i.set_offered_pps(m.trip_pps * 1.2);
        assert_eq!(i.state(), InstanceState::Overloaded);
        // Dropping into the hysteresis band keeps it overloaded...
        i.set_offered_pps((m.clear_pps + m.trip_pps) / 2.0);
        assert_eq!(i.state(), InstanceState::Overloaded);
        // ...only below the clear threshold does it roll back.
        i.set_offered_pps(m.clear_pps * 0.5);
        assert_eq!(i.state(), InstanceState::Running);
    }

    #[test]
    fn booting_then_ready() {
        let mut i = VnfInstance::booting(InstanceId(4), NfType::Proxy, 1, 4_200);
        assert!(matches!(
            i.state(),
            InstanceState::Booting { ready_at_ms: 4_200 }
        ));
        assert_eq!(i.loss_rate(), 0.0);
        i.finish_boot();
        assert_eq!(i.state(), InstanceState::Running);
    }

    #[test]
    fn cancelled_instances_stay_cancelled() {
        let mut i = VnfInstance::new(InstanceId(5), NfType::Ids, 2);
        i.cancel();
        i.finish_boot();
        assert_eq!(i.state(), InstanceState::Cancelled);
        assert_eq!(i.loss_rate(), 0.0);
    }

    #[test]
    fn negative_load_clamped() {
        let mut i = VnfInstance::new(InstanceId(6), NfType::Ids, 2);
        i.set_offered_pps(-10.0);
        assert_eq!(i.offered_pps(), 0.0);
    }

    #[test]
    fn display_id() {
        assert_eq!(InstanceId(42).to_string(), "vnf42");
    }
}
