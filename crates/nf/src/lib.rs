//! Virtual network function models for the APPLE reproduction.
//!
//! This crate captures everything the paper says about the VNFs themselves:
//!
//! * the **catalog** of Table IV — firewall (4 cores / 900 Mbps, ClickOS),
//!   proxy (4 cores / 900 Mbps, VM), NAT (2 cores / 900 Mbps, ClickOS) and
//!   IDS (8 cores / 600 Mbps, VM) — with per-NF resource requirement
//!   vectors `R_n` and capacities `Cap_n`,
//! * the **overload model** of Fig. 6: loss rate as a function of packet
//!   receiving rate for a ClickOS passive monitor (loss is driven by packet
//!   *rate*, not packet size),
//! * the **timing model** of §VII–VIII: ClickOS boot through OpenStack of
//!   3.9–4.6 s (avg 4.2 s), 70 ms forwarding-rule installation, 30 ms
//!   reconfiguration of an existing ClickOS VM, 30 ms bare-Xen ClickOS boot,
//! * running **instances** with load tracking and the hysteresis overload
//!   detector (trip above 8.5 Kpps, clear below 4 Kpps).
//!
//! # Example
//!
//! ```
//! use apple_nf::{NfType, VnfSpec};
//!
//! let fw = VnfSpec::of(NfType::Firewall);
//! assert_eq!(fw.cores, 4);
//! assert_eq!(fw.capacity_mbps, 900.0);
//! assert!(fw.clickos);
//! ```

pub mod catalog;
pub mod drf;
pub mod instance;
pub mod overload;
pub mod timing;

pub use catalog::{NfType, ResourceVector, VnfSpec};
pub use instance::{InstanceId, InstanceState, VnfInstance};
pub use overload::OverloadModel;
pub use timing::TimingModel;
