//! Overload / loss-rate model — Fig. 6 of the paper.
//!
//! The prototype measured a ClickOS passive monitor and found that loss rate
//! is governed by the packet *receiving rate*, largely independent of packet
//! size, soaring once the rate passes the instance's processing capacity.
//! APPLE therefore defines overload by a rate threshold (8.5 Kpps for the
//! monitor) with a roll-back threshold (4 Kpps) for hysteresis.
//!
//! We model the loss curve as an M/M/1/K-style saturation: negligible loss
//! below a knee located slightly under capacity, then loss → `1 − cap/rate`
//! asymptotically (the fluid limit of a saturated queue).

/// Loss-rate model for a VNF instance.
///
/// # Example
///
/// ```
/// use apple_nf::OverloadModel;
///
/// let m = OverloadModel::passive_monitor();
/// assert!(m.loss_rate(1_000.0) < 0.01);   // far below capacity
/// assert!(m.loss_rate(20_000.0) > 0.4);   // deeply saturated
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadModel {
    /// Sustainable processing capacity in packets per second.
    pub capacity_pps: f64,
    /// Fraction of capacity where the loss knee begins (queueing starts to
    /// bite slightly before full saturation). 0.9 in the prototype fit.
    pub knee: f64,
    /// Overload trip threshold in pps (8.5 Kpps in §VIII-E).
    pub trip_pps: f64,
    /// Roll-back threshold in pps (4 Kpps in §VIII-E).
    pub clear_pps: f64,
}

impl OverloadModel {
    /// The ClickOS passive monitor of the prototype experiments: capacity
    /// ≈ 10 Kpps, trip at 8.5 Kpps, clear at 4 Kpps.
    pub fn passive_monitor() -> OverloadModel {
        OverloadModel {
            capacity_pps: 10_000.0,
            knee: 0.9,
            trip_pps: 8_500.0,
            clear_pps: 4_000.0,
        }
    }

    /// Builds a model for an arbitrary capacity, with thresholds scaled the
    /// same way the prototype chose them (trip at 85 % of capacity, clear
    /// at 40 %).
    pub fn for_capacity(capacity_pps: f64) -> OverloadModel {
        OverloadModel {
            capacity_pps,
            knee: 0.9,
            trip_pps: 0.85 * capacity_pps,
            clear_pps: 0.40 * capacity_pps,
        }
    }

    /// Loss rate (0..1) at a given packet receiving rate.
    ///
    /// Below the knee the loss is essentially zero; past capacity it
    /// approaches the fluid limit `1 − capacity/rate`; between the knee and
    /// capacity a smooth quadratic ramp connects the two regimes.
    pub fn loss_rate(&self, rx_pps: f64) -> f64 {
        if rx_pps <= 0.0 {
            return 0.0;
        }
        let knee_pps = self.knee * self.capacity_pps;
        if rx_pps <= knee_pps {
            0.0
        } else if rx_pps <= self.capacity_pps {
            // Quadratic ramp from 0 at the knee to the fluid-limit slope at
            // capacity; small (≲1 %) losses in this band.
            let t = (rx_pps - knee_pps) / (self.capacity_pps - knee_pps);
            0.01 * t * t
        } else {
            // Fluid limit, continuous with the 1 % knee value.
            (1.0 - self.capacity_pps / rx_pps).max(0.01)
        }
    }

    /// Throughput actually delivered at a given offered rate.
    pub fn goodput_pps(&self, rx_pps: f64) -> f64 {
        rx_pps * (1.0 - self.loss_rate(rx_pps))
    }

    /// Whether a measured rate is above the overload trip threshold.
    pub fn is_overloaded(&self, rx_pps: f64) -> bool {
        rx_pps > self.trip_pps
    }

    /// Whether a measured rate is below the roll-back threshold.
    pub fn is_cleared(&self, rx_pps: f64) -> bool {
        rx_pps <= self.clear_pps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_zero_loss() {
        let m = OverloadModel::passive_monitor();
        assert_eq!(m.loss_rate(0.0), 0.0);
        assert_eq!(m.loss_rate(-5.0), 0.0);
    }

    #[test]
    fn loss_monotone_in_rate() {
        let m = OverloadModel::passive_monitor();
        let mut prev = 0.0;
        for r in (0..40).map(|i| i as f64 * 500.0) {
            let l = m.loss_rate(r);
            assert!(l >= prev - 1e-12, "loss dropped at {r}");
            assert!((0.0..=1.0).contains(&l));
            prev = l;
        }
    }

    #[test]
    fn saturation_approaches_fluid_limit() {
        let m = OverloadModel::passive_monitor();
        let l = m.loss_rate(100_000.0);
        assert!((l - 0.9).abs() < 0.01, "expected ~90 % loss, got {l}");
    }

    #[test]
    fn goodput_capped_at_capacity() {
        let m = OverloadModel::passive_monitor();
        for r in [12_000.0, 20_000.0, 50_000.0] {
            let g = m.goodput_pps(r);
            assert!(g <= m.capacity_pps * 1.01, "goodput {g} exceeds capacity");
        }
    }

    #[test]
    fn prototype_thresholds() {
        let m = OverloadModel::passive_monitor();
        assert!(m.is_overloaded(10_000.0));
        assert!(!m.is_overloaded(8_000.0));
        assert!(m.is_cleared(3_000.0));
        assert!(!m.is_cleared(5_000.0));
    }

    #[test]
    fn hysteresis_band_exists() {
        // Rates between clear and trip are neither overloaded nor cleared —
        // the band that prevents flapping.
        let m = OverloadModel::for_capacity(75_000.0);
        let mid = (m.clear_pps + m.trip_pps) / 2.0;
        assert!(!m.is_overloaded(mid));
        assert!(!m.is_cleared(mid));
        assert!(m.clear_pps < m.trip_pps);
    }

    #[test]
    fn loss_continuous_at_capacity() {
        let m = OverloadModel::passive_monitor();
        let below = m.loss_rate(m.capacity_pps * 0.9999);
        let above = m.loss_rate(m.capacity_pps * 1.0001);
        assert!((below - above).abs() < 0.002);
    }
}
