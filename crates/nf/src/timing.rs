//! Control-plane timing model — the latencies measured in §VII–VIII.
//!
//! The prototype found that while a bare ClickOS VM boots on Xen in ~30 ms,
//! booting through the full OpenStack + OpenDaylight pipeline takes 3.9 to
//! 4.6 seconds (average 4.2 s) because networking orchestration dominates.
//! Installing forwarding rules into Open vSwitch takes ~70 ms; reconfiguring
//! an already-running ClickOS VM into a different NF takes ~30 ms. These
//! constants drive every failover experiment (Figs 7–9, 12).

use apple_rng::rngs::StdRng;
use apple_rng::{Rng, SeedableRng};
use std::time::Duration;

/// Milliseconds; all timing-model arithmetic happens at this granularity.
pub type Millis = u64;

/// The latencies the control plane pays for each management operation.
///
/// # Example
///
/// ```
/// use apple_nf::TimingModel;
///
/// let mut t = TimingModel::paper(7);
/// let boot = t.sample_openstack_boot();
/// assert!((3_900..=4_600).contains(&boot));
/// assert_eq!(t.rule_install(), 70);
/// ```
#[derive(Debug, Clone)]
pub struct TimingModel {
    /// Minimum observed OpenStack-orchestrated ClickOS boot (ms).
    pub boot_min_ms: Millis,
    /// Maximum observed OpenStack-orchestrated ClickOS boot (ms).
    pub boot_max_ms: Millis,
    /// Bare-Xen ClickOS boot (ms) — cited from the ClickOS paper.
    pub bare_boot_ms: Millis,
    /// Forwarding-rule installation into Open vSwitch (ms).
    pub rule_install_ms: Millis,
    /// Reconfiguration of an existing ClickOS VM into a new NF (ms).
    pub reconfigure_ms: Millis,
    /// Conservative wait used by the "wait for five seconds" strategy of
    /// §VIII-C (ms).
    pub safe_wait_ms: Millis,
    /// Boot time for a normal (non-ClickOS) VM (ms); proxies and IDS run in
    /// ordinary VMs, which boot considerably slower.
    pub normal_vm_boot_ms: Millis,
    rng: StdRng,
}

impl TimingModel {
    /// The paper's measured constants, with a deterministic RNG for boot
    /// jitter.
    pub fn paper(seed: u64) -> TimingModel {
        TimingModel {
            boot_min_ms: 3_900,
            boot_max_ms: 4_600,
            bare_boot_ms: 30,
            rule_install_ms: 70,
            reconfigure_ms: 30,
            safe_wait_ms: 5_000,
            normal_vm_boot_ms: 30_000,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples an OpenStack-orchestrated ClickOS boot time, uniform over
    /// the observed 3.9–4.6 s range.
    pub fn sample_openstack_boot(&mut self) -> Millis {
        self.rng.gen_range(self.boot_min_ms..=self.boot_max_ms)
    }

    /// Mean OpenStack boot time (the paper reports 4.2 s).
    pub fn mean_openstack_boot(&self) -> Millis {
        (self.boot_min_ms + self.boot_max_ms) / 2
    }

    /// Rule-installation latency.
    pub fn rule_install(&self) -> Millis {
        self.rule_install_ms
    }

    /// ClickOS reconfiguration latency.
    pub fn reconfigure(&self) -> Millis {
        self.reconfigure_ms
    }

    /// Latency for making a *new* instance of an NF usable, depending on
    /// whether it runs in ClickOS and whether a spare ClickOS VM can simply
    /// be reconfigured.
    pub fn provision(&mut self, clickos: bool, spare_available: bool) -> Millis {
        if clickos && spare_available {
            self.reconfigure_ms
        } else if clickos {
            self.sample_openstack_boot()
        } else {
            self.normal_vm_boot_ms
        }
    }

    /// Converts a [`Millis`] value to a [`Duration`].
    pub fn to_duration(ms: Millis) -> Duration {
        Duration::from_millis(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_samples_in_observed_range() {
        let mut t = TimingModel::paper(1);
        for _ in 0..100 {
            let b = t.sample_openstack_boot();
            assert!((3_900..=4_600).contains(&b));
        }
    }

    #[test]
    fn mean_matches_paper() {
        let t = TimingModel::paper(1);
        assert_eq!(t.mean_openstack_boot(), 4_250);
        // Paper reports "average of 4.2 seconds" over 10 runs.
        assert!((t.mean_openstack_boot() as i64 - 4_200).abs() < 100);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TimingModel::paper(9);
        let mut b = TimingModel::paper(9);
        for _ in 0..10 {
            assert_eq!(a.sample_openstack_boot(), b.sample_openstack_boot());
        }
    }

    #[test]
    fn provisioning_prefers_reconfigure() {
        let mut t = TimingModel::paper(2);
        assert_eq!(t.provision(true, true), 30);
        let boot = t.provision(true, false);
        assert!(boot >= 3_900);
        assert_eq!(t.provision(false, true), 30_000); // normal VMs can't reconfig
    }

    #[test]
    fn micro_latencies() {
        let t = TimingModel::paper(3);
        assert_eq!(t.rule_install(), 70);
        assert_eq!(t.reconfigure(), 30);
        assert_eq!(TimingModel::to_duration(70), Duration::from_millis(70));
    }
}
