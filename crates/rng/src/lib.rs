//! Self-contained deterministic pseudo-random numbers.
//!
//! The build environment has no access to crates.io, so instead of the
//! `rand` crate the workspace uses this minimal drop-in: a xoshiro256++
//! generator seeded through SplitMix64, exposing the tiny slice of the
//! `rand 0.8` surface the codebase relies on (`StdRng::seed_from_u64`,
//! `gen_range` over integer/float ranges, `gen_bool`). Call sites migrate
//! by swapping `use rand::…` for `use apple_rng::…`.
//!
//! Determinism is a feature, not a compromise: every stream is a pure
//! function of its `u64` seed, on every platform, forever — which is what
//! the test suite's seeding convention (see `tests/README.md`) builds on.
//! The generator never reads entropy from the environment.
//!
//! # Example
//!
//! ```
//! use apple_rng::rngs::StdRng;
//! use apple_rng::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let die = rng.gen_range(1..=6u64);
//! assert!((1..=6).contains(&die));
//! let p: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&p));
//! ```

use std::ops::{Range, RangeInclusive};

/// Mirrors `rand::rngs` so imports read identically at call sites.
pub mod rngs {
    pub use crate::StdRng;
}

/// A xoshiro256++ generator; the workspace's only RNG.
///
/// "Std" matches the `rand` type name this replaces; the algorithm is
/// fixed and the stream for a given seed is stable across releases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// Core trait: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the codebase
/// uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion of the seed into the 256-bit state; the
        // all-zero state is unreachable this way.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// `[0, 1)` from the top 53 bits of a word.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased `[0, span)` via Lemire's multiply-shift rejection.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t; // full u64 domain
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                // Two's-complement subtraction gives the span even when the
                // range straddles zero.
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t; // full i64 domain
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

signed_sample_range!(i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "cannot sample an empty or non-finite range"
        );
        let u = unit_f64(rng.next_u64());
        // The lerp keeps the result inside [start, end) for finite inputs.
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3..=5u64);
            assert!((3..=5).contains(&w));
            let z = rng.gen_range(0..3usize);
            assert!(z < 3);
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..=3usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn float_range_stays_in_bounds_and_varies() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let v = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        // Spread: samples cover most of the interval.
        assert!(min < 2.1 && max > 4.9, "min {min} max {max}");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(19);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_u64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }
}
