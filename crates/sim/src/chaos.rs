//! Chaos harness: replay seeded fault schedules against a planned
//! deployment and check the runtime invariants after **every** event.
//!
//! Where [`crate::replay`] measures packet loss over a traffic series, this
//! module stress-tests the *control plane*: a [`FaultPlan`] derived from a
//! seed kills instances and hosts while an operation-level injector makes
//! boots and rule installs flaky, and after each event the live sub-class
//! state is verified with [`verify_shares`] — every stage on an existing,
//! correctly-typed instance on the class's own path in chain order
//! (interference freedom), and every class's traffic accounted for by live
//! shares plus the explicit shed ledger. The chaos integration test drives
//! hundreds of these schedules; the `apple chaos` CLI command runs one
//! batch and prints the report.

use apple_core::classes::{ClassId, ClassSet};
use apple_core::controller::{Apple, AppleConfig};
use apple_core::failover::DynamicHandler;
use apple_core::orchestrator::{ControlOps, ResourceOrchestrator};
use apple_core::verify::{verify_shares, ShareViolation};
use apple_faults::{FaultPlan, FaultPlanConfig};
use apple_telemetry::{Recorder, NOOP};
use apple_topology::Topology;
use apple_traffic::TrafficMatrix;
use std::collections::BTreeMap;

use crate::replay::{apply_fault, ReplayError};

/// Outcome of one fault schedule run to completion.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Schedule events applied (including no-op recoveries).
    pub events_applied: usize,
    /// Countable faults injected (crashes + host failures).
    pub faults_injected: usize,
    /// Invariant violations found, with the tick they appeared at. A
    /// correct control plane keeps this empty for every seed.
    pub violations: Vec<(u64, ShareViolation)>,
    /// Ticks at which the handler was in degraded mode.
    pub degraded_ticks: usize,
    /// Highest total shed fraction observed at any point.
    pub max_shed: f64,
    /// Total shed fraction when the schedule ended.
    pub final_shed: f64,
    /// Whether the handler ended the schedule still degraded.
    pub final_degraded: bool,
}

impl ChaosReport {
    /// True when no invariant was ever violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs one fault schedule against live deployment state, verifying the
/// runtime invariants after every event. The caller owns (and keeps) the
/// mutated state; clone a pristine deployment per schedule to amortise
/// planning across many seeds.
pub fn run_schedule(
    classes: &ClassSet,
    orch: &mut ResourceOrchestrator,
    handler: &mut DynamicHandler,
    cfg: &FaultPlanConfig,
    rec: &dyn Recorder,
) -> ChaosReport {
    let plan = FaultPlan::generate(cfg);
    let mut ops = ControlOps::with_injector(cfg.seed, Box::new(plan.injector()));
    let rates: BTreeMap<ClassId, f64> = classes.iter().map(|c| (c.id, c.rate_mbps)).collect();
    let tol = 1e-6;
    let mut report = ChaosReport::default();

    let check = |tick: u64,
                 handler: &DynamicHandler,
                 orch: &ResourceOrchestrator,
                 report: &mut ChaosReport| {
        for v in verify_shares(classes, handler, orch, tol) {
            report.violations.push((tick, v));
        }
        report.max_shed = report.max_shed.max(handler.total_shed());
    };

    for tick in 0..=plan.last_tick() {
        for ev in plan.events_at(tick).copied().collect::<Vec<_>>() {
            report.events_applied += 1;
            report.faults_injected +=
                apply_fault(&ev.kind, &rates, classes, handler, orch, &mut ops, rec);
            check(tick, handler, orch, &mut report);
        }
        // Degraded mode retries restoration every tick (capacity may have
        // come back via host recovery or a replacement boot).
        if handler.is_degraded() {
            report.degraded_ticks += 1;
            let _ = handler.recover_degraded(&rates, classes, orch, &mut ops, rec);
            check(tick, handler, orch, &mut report);
        }
    }
    report.final_shed = handler.total_shed();
    report.final_degraded = handler.is_degraded();
    report
}

/// Plans a fresh deployment for `topo`/`tm` and runs one fault schedule
/// against it (the `apple chaos` entry point).
///
/// # Errors
///
/// [`ReplayError`] from planning or handler bootstrap.
pub fn run_chaos(
    topo: &Topology,
    tm: &TrafficMatrix,
    apple_cfg: &AppleConfig,
    fault_cfg: &FaultPlanConfig,
    rec: &dyn Recorder,
) -> Result<ChaosReport, ReplayError> {
    let apple = Apple::plan_recorded(topo, tm, apple_cfg, rec)?;
    let mut handler = apple.dynamic_handler()?;
    let (classes, _placement, _plan, _program, mut orch) = apple.into_parts();
    Ok(run_schedule(
        &classes,
        &mut orch,
        &mut handler,
        fault_cfg,
        rec,
    ))
}

/// [`run_chaos`] without telemetry.
///
/// # Errors
///
/// Same as [`run_chaos`].
pub fn run_chaos_quiet(
    topo: &Topology,
    tm: &TrafficMatrix,
    apple_cfg: &AppleConfig,
    fault_cfg: &FaultPlanConfig,
) -> Result<ChaosReport, ReplayError> {
    run_chaos(topo, tm, apple_cfg, fault_cfg, &NOOP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apple_core::classes::ClassConfig;
    use apple_topology::zoo;
    use apple_traffic::GravityModel;

    fn small_cfg() -> AppleConfig {
        AppleConfig {
            classes: ClassConfig {
                max_classes: 10,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn chaos_schedule_stays_clean() {
        let topo = zoo::internet2();
        let tm = GravityModel::new(3_000.0, 61).base_matrix(&topo);
        let report =
            run_chaos_quiet(&topo, &tm, &small_cfg(), &FaultPlanConfig::chaos(61)).unwrap();
        assert!(report.faults_injected > 0, "schedule injected nothing");
        assert!(
            report.is_clean(),
            "invariant violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let topo = zoo::internet2();
        let tm = GravityModel::new(3_000.0, 61).base_matrix(&topo);
        let a = run_chaos_quiet(&topo, &tm, &small_cfg(), &FaultPlanConfig::chaos(7)).unwrap();
        let b = run_chaos_quiet(&topo, &tm, &small_cfg(), &FaultPlanConfig::chaos(7)).unwrap();
        assert_eq!(a.events_applied, b.events_applied);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.degraded_ticks, b.degraded_ticks);
        assert!((a.final_shed - b.final_shed).abs() < 1e-12);
    }

    #[test]
    fn quiet_schedule_changes_nothing() {
        let topo = zoo::internet2();
        let tm = GravityModel::new(3_000.0, 61).base_matrix(&topo);
        let report = run_chaos_quiet(&topo, &tm, &small_cfg(), &FaultPlanConfig::quiet(5)).unwrap();
        assert_eq!(report.events_applied, 0);
        assert_eq!(report.faults_injected, 0);
        assert!(report.is_clean());
        assert_eq!(report.final_shed, 0.0);
    }
}
