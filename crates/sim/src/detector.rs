//! Counter-driven overload detection — the controller-side half of §VII-B.
//!
//! The Dynamic Handler never sees packet rates directly: it polls the
//! vSwitch per-port counters ([`apple_dataplane::PortCounters`]), derives
//! per-instance rates by differencing, and applies the hysteresis
//! thresholds of the overload model. This module packages that poll loop so
//! the replay and the tests share one detection implementation.

use apple_dataplane::PortCounters;
use apple_nf::{InstanceId, OverloadModel};
use std::collections::BTreeMap;

/// Detection events a poll can emit per instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionEvent {
    /// Rate crossed the trip threshold — send an overloading notification.
    Tripped,
    /// Rate fell to/below the clear threshold — roll back.
    Cleared,
}

/// The polling detector.
#[derive(Debug, Clone)]
pub struct CounterDetector {
    previous: PortCounters,
    /// Overload model per instance (capacity/thresholds differ by NF).
    models: BTreeMap<InstanceId, OverloadModel>,
    /// Instances currently flagged overloaded.
    flagged: std::collections::BTreeSet<InstanceId>,
    /// Poll interval in seconds.
    poll_secs: f64,
}

impl CounterDetector {
    /// Creates a detector polling every `poll_secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `poll_secs` is not positive.
    pub fn new(poll_secs: f64) -> CounterDetector {
        assert!(poll_secs > 0.0, "poll interval must be positive");
        CounterDetector {
            previous: PortCounters::new(),
            models: BTreeMap::new(),
            flagged: Default::default(),
            poll_secs,
        }
    }

    /// Registers the overload model for an instance (from its Table IV
    /// spec); unregistered instances are ignored by polls.
    pub fn register(&mut self, id: InstanceId, model: OverloadModel) {
        self.models.insert(id, model);
    }

    /// Forgets an instance (e.g. after teardown).
    pub fn unregister(&mut self, id: InstanceId) {
        self.models.remove(&id);
        self.flagged.remove(&id);
    }

    /// One poll: derive rates from counter deltas, update hysteresis
    /// state, and return the events that fired.
    pub fn poll(&mut self, counters: &PortCounters) -> Vec<(InstanceId, DetectionEvent)> {
        let rates = counters.instance_rates_pps(&self.previous, self.poll_secs);
        let mut events = Vec::new();
        for (&id, model) in &self.models {
            let rate = rates.get(&id).copied().unwrap_or(0.0);
            if !self.flagged.contains(&id) && model.is_overloaded(rate) {
                self.flagged.insert(id);
                events.push((id, DetectionEvent::Tripped));
            } else if self.flagged.contains(&id) && model.is_cleared(rate) {
                self.flagged.remove(&id);
                events.push((id, DetectionEvent::Cleared));
            }
        }
        self.previous = counters.clone();
        events
    }

    /// Instances currently flagged overloaded.
    pub fn flagged(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.flagged.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apple_dataplane::packet::Packet;
    use apple_dataplane::walk::WalkRecord;

    fn record(inst: u64) -> WalkRecord {
        WalkRecord {
            switches: vec![0],
            instances: vec![InstanceId(inst)],
            hosts_visited: vec![0],
            packet: Packet::new(1, 2, 3, 4, 17),
        }
    }

    #[test]
    fn trip_and_clear_cycle() {
        let mut det = CounterDetector::new(1.0);
        det.register(InstanceId(1), OverloadModel::passive_monitor());
        let mut counters = PortCounters::new();

        // 1 Kpps: quiet.
        counters.observe_many(&record(1), 1_000);
        assert!(det.poll(&counters).is_empty());

        // 10 Kpps: trips.
        counters.observe_many(&record(1), 10_000);
        let events = det.poll(&counters);
        assert_eq!(events, vec![(InstanceId(1), DetectionEvent::Tripped)]);
        assert_eq!(det.flagged().count(), 1);

        // 6 Kpps: hysteresis band — still flagged, no event.
        counters.observe_many(&record(1), 6_000);
        assert!(det.poll(&counters).is_empty());
        assert_eq!(det.flagged().count(), 1);

        // 1 Kpps: clears.
        counters.observe_many(&record(1), 1_000);
        let events = det.poll(&counters);
        assert_eq!(events, vec![(InstanceId(1), DetectionEvent::Cleared)]);
        assert_eq!(det.flagged().count(), 0);
    }

    #[test]
    fn no_retrigger_while_flagged() {
        let mut det = CounterDetector::new(1.0);
        det.register(InstanceId(2), OverloadModel::passive_monitor());
        let mut counters = PortCounters::new();
        counters.observe_many(&record(2), 20_000);
        assert_eq!(det.poll(&counters).len(), 1);
        counters.observe_many(&record(2), 20_000);
        assert!(det.poll(&counters).is_empty(), "re-trip while flagged");
    }

    #[test]
    fn unregistered_instances_ignored() {
        let mut det = CounterDetector::new(1.0);
        let mut counters = PortCounters::new();
        counters.observe_many(&record(3), 50_000);
        assert!(det.poll(&counters).is_empty());
    }

    #[test]
    fn unregister_clears_flag() {
        let mut det = CounterDetector::new(1.0);
        det.register(InstanceId(4), OverloadModel::passive_monitor());
        let mut counters = PortCounters::new();
        counters.observe_many(&record(4), 10_000);
        det.poll(&counters);
        det.unregister(InstanceId(4));
        assert_eq!(det.flagged().count(), 0);
    }

    #[test]
    fn subsecond_polls_scale_rates() {
        let mut det = CounterDetector::new(0.1); // 100 ms polls
        det.register(InstanceId(5), OverloadModel::passive_monitor());
        let mut counters = PortCounters::new();
        // 900 packets in 100 ms = 9 Kpps > 8.5 Kpps trip.
        counters.observe_many(&record(5), 900);
        let events = det.poll(&counters);
        assert_eq!(events, vec![(InstanceId(5), DetectionEvent::Tripped)]);
    }
}
