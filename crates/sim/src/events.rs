//! A minimal time-ordered event queue for the simulator.
//!
//! Events carry a millisecond timestamp and a payload; ties pop in
//! insertion order (FIFO), which keeps replays deterministic.

use std::collections::BinaryHeap;

/// Millisecond simulation time.
pub type SimTime = u64;

struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for min-heap behaviour; earlier seq first on ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-heap event queue.
///
/// # Example
///
/// ```
/// use apple_sim::events::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(50, "b");
/// q.schedule(10, "a");
/// assert_eq!(q.pop(), Some((10, "a")));
/// assert_eq!(q.pop(), Some((50, "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(30, 3);
        q.schedule(10, 1);
        q.schedule(20, 2);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        q.schedule(5, "first");
        q.schedule(5, "second");
        q.schedule(5, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(7, ());
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }
}
