//! In-flight conformance battery: the asynchronous variant of the
//! differential battery in [`crate::packet_replay`] (DESIGN.md §13).
//!
//! The differential battery walks probes at plan barriers — synchronous
//! points where a batch has just been applied. This battery instead
//! submits the whole update plan to an asynchronous
//! [`SouthboundChannel`] (seeded per-op latency under the paper's 70 ms
//! rule-install model, per-device reordering, explicit barrier acks) and
//! walks **every probe at every scheduler tick** while installs are in
//! flight. At each tick the observable fabric is whatever prefix of the
//! plan the channel has acked so far, so the battery proves the
//! three-tier guarantee *in virtual time*, not just at batch boundaries:
//!
//! 1. every observed walk is bitwise the old walk, bitwise the new walk,
//!    or a chain-consistent old/new mix — never a transient chain bypass;
//! 2. once the channel drains, every walk is bitwise the full
//!    recompile's walk;
//! 3. the final fabric equals the full recompile rule for rule.
//!
//! The channel's global barrier gate is what makes this hold: reordering
//! and retries are confined *within* a barrier, so tick-time states are
//! exactly the plan prefixes the synchronous battery already certifies.

use apple_dataplane::compiler::{compile, CompilerSnapshot};
use apple_dataplane::diff::{apply_batch_unchecked, diff};
use apple_dataplane::packet::Packet;
use apple_dataplane::southbound::{SouthboundChannel, SouthboundConfig, SouthboundEvent};
use apple_nf::{InstanceId, NfType};
use apple_topology::Path;
use std::collections::{BTreeMap, BTreeSet};

use crate::packet_replay::{
    chain_consistent, conformance_probes, walk_batch, walk_detail, ConformanceError, Engine, Walk,
    WalkEngineConfig,
};

/// Configuration for one in-flight conformance run.
#[derive(Debug, Clone, Copy)]
pub struct InflightConfig {
    /// Walk engine and thread budget for the per-tick probe batteries.
    pub engine: WalkEngineConfig,
    /// Channel timing: seed, per-rule latency, jitter, reorder window.
    pub southbound: SouthboundConfig,
    /// Virtual milliseconds per scheduler tick.
    pub tick_ms: u64,
}

impl InflightConfig {
    /// The paper's timing model (70 ms per rule install) with a 10 ms
    /// probe tick — several walks land inside every barrier's flight.
    pub fn paper(seed: u64) -> InflightConfig {
        InflightConfig {
            engine: WalkEngineConfig::default(),
            southbound: SouthboundConfig::paper(seed),
            tick_ms: 10,
        }
    }
}

/// Tallies from one in-flight run. Walk classifications mirror
/// [`crate::packet_replay::ConformanceReport`], but are counted per tick
/// rather than per barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InflightReport {
    /// Barriers the channel completed (one per update batch).
    pub barriers: usize,
    /// Scheduler ticks the run observed (= probe batteries walked).
    pub ticks: usize,
    /// Probes in the battery.
    pub probes: usize,
    /// Total packet walks across all ticks.
    pub walks: usize,
    /// Walks bitwise-identical to the pre-update program's walk.
    pub old_exact: usize,
    /// Walks bitwise-identical to the full recompile's walk.
    pub new_exact: usize,
    /// Chain-consistent old/new mixes (legal while in flight).
    pub mixed: usize,
    /// Virtual time the channel took to drain the plan.
    pub elapsed_ms: u64,
    /// Install retries the channel consumed (0 under [`SouthboundChannel::new`]).
    pub retries: u64,
}

/// Runs the in-flight battery for the update from `old` to `new`.
///
/// The plan is submitted up front; the channel is then advanced one
/// [`InflightConfig::tick_ms`] at a time, completed barriers are applied
/// to the observed fabric (patching the compiled engine per device via
/// `rebuild_delta`), and the full probe battery is walked at every tick
/// until the channel drains.
///
/// # Errors
///
/// The first [`ConformanceError`] found: a `BarrierWalk` for a mid-flight
/// walk that is neither old, new, nor a chain-consistent mix; a
/// `FinalWalk` for a post-drain walk that differs from the recompile; a
/// `FinalProgram` if the drained fabric is not rule-for-rule the
/// recompile.
///
/// # Panics
///
/// The fault-free channel cannot fail; an internal channel error panics.
pub fn inflight_conformance(
    old: &CompilerSnapshot,
    new: &CompilerSnapshot,
    cfg: &InflightConfig,
) -> Result<InflightReport, ConformanceError> {
    let old_prog = compile(old);
    let new_prog = compile(new);
    let plan = diff(&old_prog, &new_prog);
    let probes = conformance_probes(old, new);
    let jobs: Vec<(Packet, &Path)> = probes.iter().map(|p| (p.packet, &p.path)).collect();

    let old_engine = Engine::of(&old_prog, cfg.engine.engine);
    let new_engine = Engine::of(&new_prog, cfg.engine.engine);
    let old_walks: Vec<Walk> = walk_batch(old_engine.as_dyn(), &jobs, cfg.engine.threads);
    let new_walks: Vec<Walk> = walk_batch(new_engine.as_dyn(), &jobs, cfg.engine.threads);

    let mut nf_of: BTreeMap<InstanceId, NfType> = BTreeMap::new();
    let mut chains: BTreeSet<Vec<NfType>> = BTreeSet::new();
    for s in old.subclasses.iter().chain(new.subclasses.iter()) {
        for (j, &inst) in s.instances.iter().enumerate() {
            nf_of.insert(inst, s.stage_nfs[j]);
        }
        if !s.stage_nfs.is_empty() {
            chains.insert(s.stage_nfs.clone());
        }
    }

    let mut chan = SouthboundChannel::new(cfg.southbound);
    chan.submit_plan(&plan);

    let mut report = InflightReport {
        probes: probes.len(),
        ..InflightReport::default()
    };
    let mut patched = old_prog;
    let mut engine = old_engine;
    while !chan.is_idle() {
        let events = chan
            .advance(cfg.tick_ms)
            .expect("fault-free southbound channel cannot fail");
        for event in events {
            if let SouthboundEvent::Barrier(done) = event {
                apply_batch_unchecked(&mut patched, &done.batch);
                engine.patch(&patched, &done.batch);
                report.barriers += 1;
                report.retries += done.retries;
            }
        }
        report.ticks += 1;
        let drained = chan.is_idle();
        let got_walks = walk_batch(engine.as_dyn(), &jobs, cfg.engine.threads);
        for (i, probe) in probes.iter().enumerate() {
            let got = got_walks[i].clone();
            report.walks += 1;
            if got == new_walks[i] {
                report.new_exact += 1;
            } else if drained {
                return Err(ConformanceError::FinalWalk {
                    probe: probe.label.clone(),
                    detail: walk_detail(&got),
                });
            } else if got == old_walks[i] {
                report.old_exact += 1;
            } else if chain_consistent(&got, &old_walks[i], &new_walks[i], &nf_of, &chains) {
                report.mixed += 1;
            } else {
                return Err(ConformanceError::BarrierWalk {
                    barrier: report.barriers,
                    probe: probe.label.clone(),
                    detail: walk_detail(&got),
                });
            }
        }
    }
    if patched != new_prog {
        return Err(ConformanceError::FinalProgram);
    }
    report.elapsed_ms = chan.now_ms();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apple_dataplane::compiler::SubclassSpec;

    /// A `switches`-long line with one two-stage class; `fw`/`ids` pick
    /// the serving instances so scenarios can model churn.
    fn line_snapshot(switches: usize, fw: u64, ids: u64) -> CompilerSnapshot {
        let path: Vec<usize> = (0..switches).collect();
        CompilerSnapshot {
            switches: path.clone(),
            hosts: vec![1, switches - 1],
            rewriters: Vec::new(),
            subclasses: vec![SubclassSpec {
                class: 0,
                class_name: "c0".into(),
                sub: 0,
                tag: 0,
                global: false,
                path,
                src_prefix: (0x0a00_0000, 24),
                dst_prefix: (0x0a00_0100, 24),
                proto: Some(6),
                dst_ports: vec![80, 443],
                prefixes: vec![(0x0a00_0000, 25), (0x0a00_0080, 25)],
                stage_positions: vec![1, switches - 1],
                stage_nfs: vec![NfType::Firewall, NfType::Ids],
                instances: vec![InstanceId(fw), InstanceId(ids)],
            }],
            compress: true,
        }
    }

    fn empty_snapshot(switches: usize) -> CompilerSnapshot {
        CompilerSnapshot {
            switches: (0..switches).collect(),
            ..CompilerSnapshot::default()
        }
    }

    /// The headline acceptance battery: ≥200 seeded (topology,
    /// reorder-schedule) pairs, probes walked at every tick, every walk
    /// three-tier legal, every run draining to the recompile.
    #[test]
    fn battery_holds_across_seeded_reorderings() {
        // 4 update scenarios × 52 channel seeds = 208 ≥ 200 pairs; the
        // seed drives both per-op latency sampling and the per-device
        // reorder permutations, so each pair observes a distinct
        // in-flight schedule.
        let scenarios: Vec<(&str, CompilerSnapshot, CompilerSnapshot)> = vec![
            ("swap-3", line_snapshot(3, 0, 1), line_snapshot(3, 7, 1)),
            ("swap-5", line_snapshot(5, 0, 1), line_snapshot(5, 7, 9)),
            ("arrive-4", empty_snapshot(4), line_snapshot(4, 0, 1)),
            ("depart-4", line_snapshot(4, 0, 1), empty_snapshot(4)),
        ];
        let mut pairs = 0usize;
        let mut mid_flight_walks = 0usize;
        for (name, old, new) in &scenarios {
            for k in 0..52u64 {
                let cfg = InflightConfig::paper(0x1f11_0000 ^ (k << 8) ^ pairs as u64);
                let report = inflight_conformance(old, new, &cfg)
                    .unwrap_or_else(|e| panic!("{name} seed {k}: {e}"));
                assert!(report.barriers > 0, "{name} seed {k}: empty plan");
                assert_eq!(
                    report.walks,
                    report.ticks * report.probes,
                    "{name} seed {k}: probes must be walked at every tick"
                );
                assert_eq!(
                    report.walks,
                    report.old_exact + report.new_exact + report.mixed,
                    "{name} seed {k}: unclassified walk"
                );
                // Under the 70 ms model a barrier flies for several
                // 10 ms ticks, so the battery must observe the fabric
                // mid-flight (strictly more ticks than barriers).
                assert!(
                    report.ticks > report.barriers,
                    "{name} seed {k}: no mid-flight ticks"
                );
                // Zero-op rewriter barriers drain instantly, but every
                // scenario installs rules somewhere, so the run must pay
                // at least one full install latency.
                assert!(
                    report.elapsed_ms >= cfg.southbound.rule_install_ms,
                    "{name} seed {k}: drained faster than one rule install"
                );
                mid_flight_walks += report.old_exact + report.mixed;
                pairs += 1;
            }
        }
        assert!(pairs >= 200, "battery ran only {pairs} pairs");
        assert!(
            mid_flight_walks > 0,
            "battery never observed an in-flight state"
        );
    }

    /// The identity update drains instantly: no barriers, no ticks.
    #[test]
    fn identity_plan_is_trivially_clean() {
        let snap = line_snapshot(3, 0, 1);
        let report = inflight_conformance(&snap, &snap, &InflightConfig::paper(4)).unwrap();
        assert_eq!(report.barriers, 0);
        assert_eq!(report.ticks, 0);
        assert_eq!(report.walks, 0);
        assert_eq!(report.elapsed_ms, 0);
    }

    /// The run is a pure function of the seed, and distinct seeds
    /// produce distinct in-flight schedules.
    #[test]
    fn reports_are_deterministic_per_seed() {
        let old = line_snapshot(4, 0, 1);
        let new = line_snapshot(4, 7, 1);
        let a = inflight_conformance(&old, &new, &InflightConfig::paper(11)).unwrap();
        let b = inflight_conformance(&old, &new, &InflightConfig::paper(11)).unwrap();
        assert_eq!(a, b, "same seed must replay bitwise");
        let c = inflight_conformance(&old, &new, &InflightConfig::paper(12)).unwrap();
        assert_ne!(
            a.elapsed_ms, c.elapsed_ms,
            "different seeds should sample different schedules"
        );
    }

    /// Engine choice and thread budget must not change what the battery
    /// observes — the schedule lives in the channel, not the walker.
    #[test]
    fn reports_identical_across_engines_and_threads() {
        use crate::packet_replay::EngineKind;
        let old = line_snapshot(3, 0, 1);
        let new = line_snapshot(3, 7, 1);
        let base = inflight_conformance(&old, &new, &InflightConfig::paper(21)).unwrap();
        for engine in [EngineKind::Linear, EngineKind::Compiled] {
            for threads in [1, 2, 8] {
                let cfg = InflightConfig {
                    engine: WalkEngineConfig { engine, threads },
                    ..InflightConfig::paper(21)
                };
                let got = inflight_conformance(&old, &new, &cfg).unwrap();
                assert_eq!(got, base, "engine {} threads {threads}", engine.name());
            }
        }
    }

    /// A wider reorder window shuffles op completions harder but must
    /// never surface an illegal state.
    #[test]
    fn hostile_reorder_windows_stay_conformant() {
        let old = line_snapshot(5, 0, 1);
        let new = empty_snapshot(5);
        for window in [0usize, 1, 8, 64] {
            let mut cfg = InflightConfig::paper(0x77 ^ window as u64);
            cfg.southbound.reorder_window = window;
            let report = inflight_conformance(&old, &new, &cfg)
                .unwrap_or_else(|e| panic!("window {window}: {e}"));
            assert_eq!(
                report.walks,
                report.old_exact + report.new_exact + report.mixed
            );
        }
    }
}
