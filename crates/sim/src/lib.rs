//! Discrete-event simulation driving APPLE end-to-end — the substrate that
//! replaces the paper's OpenStack/ClickOS/Open vSwitch/OpenDaylight testbed
//! (see DESIGN.md §2). All control-plane latencies come from the prototype
//! measurements in §VII–VIII: 3.9–4.6 s OpenStack ClickOS boot, 70 ms rule
//! installation, 30 ms ClickOS reconfiguration.
//!
//! * [`events`] — a time-ordered event queue,
//! * [`metrics`] — time-series collectors and summary statistics,
//! * [`replay`] — the Fig. 12 experiment: replay a traffic-matrix series
//!   against a planned deployment, with or without fast failover, and
//!   record the network-wide packet-loss rate over time,
//! * [`failover_lab`] — the prototype micro-experiments: Fig. 7
//!   (throughput collapse during a naive failover), Fig. 8 (20 MB transfer
//!   time CDFs for the three strategies), Fig. 9 (overload detection
//!   timeline),
//! * [`chaos`] — seeded fault schedules (crashes, host failures, flaky
//!   control operations) replayed against a live deployment, with the
//!   runtime invariants verified after every event,
//! * [`online`] — drive a flow arrival/departure timeline through the
//!   online orchestration loop and summarise placements, re-solves and
//!   shedding,
//! * [`detector`] — the counter-based overload detector behind the Fig. 9
//!   timeline,
//! * [`packet_replay`] — packet-level conformance batteries over compiled
//!   rule programs, the batched parallel [`walk_batch`] replay engine, and
//!   the [`WalkEngineConfig`] seam selecting linear-scan vs compiled
//!   fast-path walking (DESIGN.md §10 and §12),
//! * [`inflight_conformance()`] — the asynchronous variant: walk every
//!   probe at every scheduler tick while an update plan is in flight on
//!   the seeded southbound channel (DESIGN.md §13).
//!
//! # Example
//!
//! ```
//! use apple_sim::failover_lab::{detection_timeline, DetectorConfig};
//!
//! let timeline = detection_timeline(&DetectorConfig::paper());
//! assert!(timeline.iter().any(|p| p.helper_active));
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod detector;
pub mod events;
pub mod failover_lab;
pub mod inflight_conformance;
pub mod metrics;
pub mod online;
pub mod packet_replay;
pub mod replay;

pub use chaos::{run_chaos, run_schedule, ChaosReport};
pub use inflight_conformance::{inflight_conformance, InflightConfig, InflightReport};
pub use metrics::{Series, Summary};
pub use online::{build_timeline, run_timeline, OnlineRunConfig, OnlineRunReport};
pub use packet_replay::{
    conformance_probes, differential_conformance, differential_conformance_with,
    repair_conformance, repair_conformance_with, walk_batch, ConformanceError, ConformanceProbe,
    ConformanceReport, EngineKind, WalkEngineConfig,
};
pub use replay::{ReplayConfig, ReplayError, ReplayOutcome};
