//! Time-series collectors and summary statistics for the experiments.

use std::fmt;

/// A named time series of `(t, value)` samples.
///
/// # Example
///
/// ```
/// use apple_sim::metrics::Series;
///
/// let mut s = Series::new("loss");
/// s.push(0.0, 0.01);
/// s.push(1.0, 0.03);
/// assert_eq!(s.len(), 2);
/// assert!((s.mean() - 0.02).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    name: String,
    samples: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, t: f64, value: f64) {
        self.samples.push((t, value));
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|(_, v)| v).sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum value (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().map(|(_, v)| *v).fold(0.0, f64::max)
    }

    /// Values-only view.
    pub fn values(&self) -> Vec<f64> {
        self.samples.iter().map(|(_, v)| *v).collect()
    }

    /// Full summary of the values.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.values())
    }
}

/// Five-number-ish summary used for boxplot-style reporting (Fig. 10).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    /// Smallest value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Computes the summary of a sample set (all zeros when empty).
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                v[lo] + (v[hi] - v[lo]) * (idx - lo as f64)
            }
        };
        Summary {
            min: v[0],
            p25: q(0.25),
            p50: q(0.50),
            p75: q(0.75),
            max: *v.last().expect("non-empty"),
            mean: values.iter().sum::<f64>() / values.len() as f64,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.3} / p25 {:.3} / median {:.3} / p75 {:.3} / max {:.3} (mean {:.3})",
            self.min, self.p25, self.p50, self.p75, self.max, self.mean
        )
    }
}

/// Empirical CDF points `(value, cumulative fraction)` — Fig. 8's format.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_stats() {
        let mut s = Series::new("x");
        for (i, v) in [3.0, 1.0, 2.0].iter().enumerate() {
            s.push(i as f64, *v);
        }
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.name(), "x");
    }

    #[test]
    fn empty_series_is_safe() {
        let s = Series::new("e");
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.summary(), Summary::default());
    }

    #[test]
    fn summary_quartiles() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let c = cdf(&[5.0, 1.0, 3.0]);
        assert_eq!(c.len(), 3);
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn summary_display_readable() {
        let s = Summary::of(&[1.0, 2.0]);
        let out = s.to_string();
        assert!(out.contains("median"));
    }
}
