//! Online-loop driver: run a generated arrival/departure timeline through
//! the [`OrchestrationLoop`] and summarise what happened.
//!
//! The benchmark binary (`bench_online`), the `apple online` CLI command
//! and the chaos battery all need the same scaffolding — build a merged
//! [`EventTimeline`] over a topology's edge pairs, feed it event by event
//! into the loop, optionally verify after every step — so it lives here
//! once.

use apple_core::online::{OnlineConfig, OrchestrationLoop, StepReport};
use apple_core::orchestrator::ResourceOrchestrator;
use apple_core::verify::verify_shares;
use apple_telemetry::Recorder;
use apple_topology::{NodeId, Topology};
use apple_traffic::arrivals::{ArrivalConfig, EventTimeline};

/// Configuration of one online run.
#[derive(Debug, Clone)]
pub struct OnlineRunConfig {
    /// Arrival process per OD pair.
    pub arrivals: ArrivalConfig,
    /// Arrival-generation horizon in seconds (departures extend past it so
    /// the timeline always drains).
    pub horizon_secs: f64,
    /// Host cores per switch.
    pub host_cores: u32,
    /// Loop configuration (re-solve period, churn bound, engine).
    pub online: OnlineConfig,
    /// Verify the placement ([`verify_shares`]) after every event —
    /// expensive; tests only.
    pub verify_every_event: bool,
}

impl Default for OnlineRunConfig {
    fn default() -> Self {
        OnlineRunConfig {
            arrivals: ArrivalConfig::default(),
            horizon_secs: 120.0,
            host_cores: 64,
            online: OnlineConfig::default(),
            verify_every_event: false,
        }
    }
}

/// Summary of one timeline run through the loop.
#[derive(Debug, Clone, Default)]
pub struct OnlineRunReport {
    /// Events processed.
    pub events: u64,
    /// Classes placed or re-placed through the DP.
    pub placements: u64,
    /// Instances launched.
    pub launches: u64,
    /// Instances retired.
    pub retirements: u64,
    /// Shed events (placement failures).
    pub shed_events: u64,
    /// Global re-solves whose make-before-break transition applied.
    pub resolves_applied: u64,
    /// Global re-solves deferred by the churn bound.
    pub resolves_deferred: u64,
    /// Global re-solves that fell back to the in-place re-pack after
    /// their transition rolled back.
    pub resolves_repacked: u64,
    /// Peak concurrent instance count.
    pub peak_instances: usize,
    /// Peak concurrent served classes.
    pub peak_live_classes: usize,
    /// Instances still running when the timeline drained (0 for a clean
    /// drain).
    pub final_instances: usize,
    /// Classes still shed when the timeline drained.
    pub final_shed: usize,
    /// `verify_shares` violations seen (only counted when
    /// `verify_every_event` is set).
    pub violations: u64,
}

/// All ordered edge-to-edge OD pairs of a topology — the workload the
/// arrival process runs over.
pub fn edge_pairs(topo: &Topology) -> Vec<(NodeId, NodeId)> {
    let nodes: Vec<NodeId> = if topo.edge_nodes.is_empty() {
        (0..topo.graph.node_count()).map(NodeId).collect()
    } else {
        topo.edge_nodes.clone()
    };
    let mut pairs = Vec::new();
    for &s in &nodes {
        for &d in &nodes {
            if s != d {
                pairs.push((s, d));
            }
        }
    }
    pairs
}

/// Generates the merged timeline for a run configuration.
pub fn build_timeline(topo: &Topology, cfg: &OnlineRunConfig) -> EventTimeline {
    EventTimeline::generate(&edge_pairs(topo), &cfg.arrivals, cfg.horizon_secs)
}

/// Runs `timeline` through a fresh [`OrchestrationLoop`], stepping the
/// supplied callback after every event (the benchmark uses it to time
/// steps; pass `|_, _| {}` when uninterested).
pub fn run_timeline<F>(
    topo: &Topology,
    timeline: &EventTimeline,
    cfg: &OnlineRunConfig,
    rec: &dyn Recorder,
    mut after_step: F,
) -> (OrchestrationLoop, OnlineRunReport)
where
    F: FnMut(usize, &StepReport),
{
    let orch = ResourceOrchestrator::with_uniform_hosts(topo, cfg.host_cores);
    let mut looper = OrchestrationLoop::new(topo, orch, cfg.online.clone());
    let mut report = OnlineRunReport::default();
    for (n, event) in timeline.events().iter().enumerate() {
        let step = looper.step(event, rec);
        report.events += 1;
        report.placements += u64::from(step.placed);
        report.launches += u64::from(step.launched);
        report.retirements += u64::from(step.retired);
        report.shed_events += u64::from(step.shed);
        report.resolves_applied += u64::from(step.resolved && !step.resolve_repacked);
        report.resolves_deferred += u64::from(step.resolve_deferred);
        report.resolves_repacked += u64::from(step.resolve_repacked);
        report.peak_instances = report.peak_instances.max(looper.instance_count());
        report.peak_live_classes = report.peak_live_classes.max(looper.live_count());
        if cfg.verify_every_event {
            let (classes, handler) = looper.snapshot();
            report.violations +=
                verify_shares(&classes, &handler, looper.orchestrator(), 1e-6).len() as u64;
        }
        after_step(n, &step);
    }
    report.final_instances = looper.instance_count();
    report.final_shed = looper.shed_count();
    (looper, report)
}
