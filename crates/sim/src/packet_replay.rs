//! Packet-level replay: the high-fidelity variant of the Fig. 12 pipeline.
//!
//! Where [`crate::replay`] tracks loads analytically through the Dynamic
//! Handler's shares, this module drives the **actual data plane**: every
//! tick it walks representative packets of every sub-class through the
//! programmed switches/vSwitches, credits the per-port counters the
//! prototype polls (§VII-B), and runs the counter-based detector. It
//! validates the full chain
//!
//! > controller plan → TCAM/vSwitch rules → packet walks → port counters
//! > → rate differencing → hysteresis detection
//!
//! end-to-end. Mitigation (re-balancing) is the analytic replay's job;
//! here the interesting outputs are the detection events and the
//! counter-derived loss curve.

use apple_core::controller::{Apple, AppleConfig};
use apple_core::engine::EngineError;
use apple_dataplane::packet::Packet;
use apple_dataplane::PortCounters;
use apple_nf::OverloadModel;
use apple_topology::Topology;
use apple_traffic::TmSeries;

use crate::detector::{CounterDetector, DetectionEvent};
use crate::metrics::Series;

/// Configuration for a packet-level replay.
#[derive(Debug, Clone)]
pub struct PacketReplayConfig {
    /// Planning knobs.
    pub apple: AppleConfig,
    /// Packet size for Mbps → pps conversion.
    pub packet_bytes: u32,
    /// Seconds per tick (= detector poll interval).
    pub tick_secs: f64,
}

impl Default for PacketReplayConfig {
    fn default() -> Self {
        PacketReplayConfig {
            apple: AppleConfig::default(),
            packet_bytes: 1500,
            tick_secs: 1.0,
        }
    }
}

/// Outcome of a packet-level replay.
#[derive(Debug, Clone)]
pub struct PacketReplayOutcome {
    /// Counter-derived network loss rate per tick.
    pub loss: Series,
    /// Overload notifications the detector raised.
    pub trips: usize,
    /// Roll-back events.
    pub clears: usize,
    /// Total packets walked (sanity/scale indicator).
    pub packets_walked: u64,
}

/// Runs the packet-level replay.
///
/// # Errors
///
/// Propagates [`EngineError`] from planning; panics only on internal
/// inconsistencies (a mis-programmed data plane fails loudly in walks).
pub fn packet_replay(
    topo: &Topology,
    series: &TmSeries,
    cfg: &PacketReplayConfig,
) -> Result<PacketReplayOutcome, EngineError> {
    let apple = Apple::plan(topo, &series.mean(), &cfg.apple)?;

    // Register every instance with the detector.
    let mut detector = CounterDetector::new(cfg.tick_secs);
    for inst in apple.orchestrator().instances() {
        detector.register(
            inst.id(),
            OverloadModel::for_capacity(inst.spec().capacity_pps(cfg.packet_bytes)),
        );
    }

    let mut counters = PortCounters::new();
    let mut prev_counters = counters.clone();
    let mut loss = Series::new("packet-loss");
    let mut trips = 0usize;
    let mut clears = 0usize;
    let mut packets_walked = 0u64;

    for (tick, tm) in series.iter().enumerate() {
        let scoped = apple.classes().with_rates_from(tm);
        // Walk one representative packet per (sub-class, prefix), credited
        // with the prefix's share of the sub-class packet count.
        for class in &scoped {
            let pps = class.rate_pps(cfg.packet_bytes) * cfg.tick_secs;
            for sub in apple.subclasses().of_class(class.id) {
                let sub_packets = pps * sub.fraction();
                if sub_packets < 1.0 {
                    continue;
                }
                let total_share: f64 = sub
                    .prefixes
                    .iter()
                    .map(|&(_, len)| 2f64.powi(-(i32::from(len) - 24)))
                    .sum();
                for &(addr, len) in &sub.prefixes {
                    let share = 2f64.powi(-(i32::from(len) - 24)) / total_share;
                    let count = (sub_packets * share).round() as u64;
                    if count == 0 {
                        continue;
                    }
                    // A host inside this prefix (host bits = 1 where room).
                    let host_bit = if len < 32 { 1 } else { 0 };
                    let p = Packet::new(addr | host_bit, class.dst_prefix.0 | 9, 40_000, 80, 6);
                    let rec = apple
                        .program()
                        .walker
                        .walk(p, &class.path)
                        .expect("programmed data plane walks cleanly");
                    counters.observe_many(&rec, count);
                    packets_walked += count;
                }
            }
        }
        // Poll: detection events + counter-derived loss.
        for (_, event) in detector.poll(&counters) {
            match event {
                DetectionEvent::Tripped => trips += 1,
                DetectionEvent::Cleared => clears += 1,
            }
        }
        let rates = counters.instance_rates_pps(&prev_counters, cfg.tick_secs);
        let mut offered = 0.0;
        let mut lost = 0.0;
        for (id, rate) in rates {
            let Some(inst) = apple.orchestrator().instance(id) else {
                continue;
            };
            let model = OverloadModel::for_capacity(inst.spec().capacity_pps(cfg.packet_bytes));
            offered += rate;
            lost += rate * model.loss_rate(rate);
        }
        loss.push(
            tick as f64,
            if offered > 0.0 { lost / offered } else { 0.0 },
        );
        prev_counters = counters.clone();
    }
    Ok(PacketReplayOutcome {
        loss,
        trips,
        clears,
        packets_walked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apple_core::classes::ClassConfig;
    use apple_topology::zoo;
    use apple_traffic::SeriesConfig;

    fn cfg() -> PacketReplayConfig {
        PacketReplayConfig {
            apple: AppleConfig {
                classes: ClassConfig {
                    max_classes: 8,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn bursty() -> (apple_topology::Topology, TmSeries) {
        let topo = zoo::internet2();
        let series = TmSeries::generate(
            &topo,
            &SeriesConfig {
                snapshots: 40,
                burst_pairs: 2,
                burst_scale: 10.0,
                ..SeriesConfig::paper(91)
            },
        );
        (topo, series)
    }

    #[test]
    fn walks_packets_and_detects_bursts() {
        let (topo, series) = bursty();
        let out = packet_replay(&topo, &series, &cfg()).unwrap();
        assert_eq!(out.loss.len(), series.len());
        assert!(out.packets_walked > 0);
        // The 10x bursts must overload something.
        assert!(out.trips > 0, "detector never fired");
        // And the roll-back thresholds must clear after bursts subside.
        assert!(out.clears > 0, "detector never cleared");
        for (_, v) in out.loss.samples() {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn quiet_series_stays_clean() {
        let topo = zoo::internet2();
        let series = TmSeries::generate(
            &topo,
            &SeriesConfig {
                snapshots: 20,
                burst_pairs: 0,
                total_mbps: 800.0,
                mvr_a: 0.1,
                ..SeriesConfig::paper(92)
            },
        );
        let out = packet_replay(&topo, &series, &cfg()).unwrap();
        assert_eq!(out.trips, 0, "phantom overload at low load");
        assert!(out.loss.max() < 0.02, "loss {} at low load", out.loss.max());
    }

    #[test]
    fn counter_rates_track_offered_load() {
        // With a constant series, the counter-derived per-tick total must
        // match the analytic offered load of the deployment.
        let topo = zoo::internet2();
        let series = TmSeries::generate(
            &topo,
            &SeriesConfig {
                snapshots: 6,
                burst_pairs: 0,
                mvr_a: 0.0, // no noise
                diurnal_depth: 0.0,
                weekly_depth: 0.0,
                total_mbps: 1_500.0,
                ..SeriesConfig::paper(93)
            },
        );
        // All classes (no truncation) so the walked volume covers the full
        // matrix.
        let full_cfg = PacketReplayConfig {
            apple: AppleConfig::default(),
            ..PacketReplayConfig::default()
        };
        let out = packet_replay(&topo, &series, &full_cfg).unwrap();
        // Sub-1-packet sub-classes and rounding cause small undercount;
        // just require the order of magnitude to be right.
        let expected_pps = 1_500.0 * 1e6 / (1_500.0 * 8.0); // = 125_000
        let per_tick = out.packets_walked as f64 / series.len() as f64;
        assert!(
            per_tick > 0.5 * expected_pps && per_tick < 2.0 * expected_pps,
            "per-tick packets {per_tick} vs expected ~{expected_pps}"
        );
    }
}
