//! Packet-level replay: the high-fidelity variant of the Fig. 12 pipeline.
//!
//! Where [`crate::replay`] tracks loads analytically through the Dynamic
//! Handler's shares, this module drives the **actual data plane**: every
//! tick it walks representative packets of every sub-class through the
//! programmed switches/vSwitches, credits the per-port counters the
//! prototype polls (§VII-B), and runs the counter-based detector. It
//! validates the full chain
//!
//! > controller plan → TCAM/vSwitch rules → packet walks → port counters
//! > → rate differencing → hysteresis detection
//!
//! end-to-end. Mitigation (re-balancing) is the analytic replay's job;
//! here the interesting outputs are the detection events and the
//! counter-derived loss curve.
//!
//! The module also hosts the **differential conformance battery** for the
//! incremental rule compiler ([`differential_conformance`]): replay a
//! seeded probe set through the full recompiled program and through the
//! incrementally patched program *at every intermediate barrier* of the
//! update plan, and check the three-tier update guarantee documented in
//! `apple_dataplane::diff`.
//!
//! Both the per-tick replay batteries and the per-barrier conformance
//! walks run through [`walk_batch`]: contiguous chunks across scoped
//! worker threads with a deterministic by-index merge (the PR-3
//! decomposed-solver pattern), generic over the
//! [`WalkEngine`] in use. The engine —
//! the reference linear scan or the compiled fast path of DESIGN.md §12 —
//! and the thread budget are picked per run via [`WalkEngineConfig`]; the
//! conformance batteries patch the compiled engine barrier-by-barrier
//! through `rebuild_delta`, so every battery run also exercises the
//! incremental fast-path maintenance the online loop relies on.

use apple_core::controller::{Apple, AppleConfig};
use apple_core::engine::EngineError;
use apple_dataplane::compiler::{compile, CompilerSnapshot, RuleProgram};
use apple_dataplane::diff::{apply_batch_unchecked, diff};
use apple_dataplane::fastpath::CompiledProgram;
use apple_dataplane::packet::{HostTag, Packet};
use apple_dataplane::walk::{NetworkWalker, WalkEngine, WalkError, WalkRecord};
use apple_dataplane::PortCounters;
use apple_nf::{InstanceId, NfType, OverloadModel};
use apple_topology::{NodeId, Path, Topology};
use apple_traffic::TmSeries;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::detector::{CounterDetector, DetectionEvent};
use crate::metrics::Series;

/// Which [`WalkEngine`] implementation backs a replay or conformance run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The reference linear first-match scan
    /// ([`apple_dataplane::walk::NetworkWalker`]).
    Linear,
    /// The compiled fast path
    /// ([`apple_dataplane::fastpath::CompiledProgram`], DESIGN.md §12).
    #[default]
    Compiled,
}

impl EngineKind {
    /// Parses the `--engine` CLI spelling.
    ///
    /// # Errors
    ///
    /// A usage message naming the accepted spellings.
    pub fn parse(s: &str) -> Result<EngineKind, String> {
        match s {
            "linear" => Ok(EngineKind::Linear),
            "compiled" => Ok(EngineKind::Compiled),
            other => Err(format!("unknown engine \"{other}\" (linear|compiled)")),
        }
    }

    /// Canonical display name (`linear` / `compiled`).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Linear => "linear",
            EngineKind::Compiled => "compiled",
        }
    }
}

/// Engine selection plus worker-thread budget for batched walks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkEngineConfig {
    /// Which engine walks the packets.
    pub engine: EngineKind,
    /// Worker threads for [`walk_batch`]; `0` = one per available CPU,
    /// `1` = in-place sequential (no spawning).
    pub threads: usize,
}

impl Default for WalkEngineConfig {
    fn default() -> Self {
        WalkEngineConfig {
            engine: EngineKind::Compiled,
            threads: 1,
        }
    }
}

/// Resolves a requested thread count against the machine and the amount of
/// work, mirroring the decomposed-solver convention.
fn effective_threads(requested: usize, work: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let t = if requested == 0 { auto } else { requested };
    t.clamp(1, work.max(1))
}

/// Walks a battery of `(packet, path)` jobs through one engine, chunked
/// across scoped worker threads with a deterministic by-index merge: the
/// result at index `i` is always job `i`'s walk, whatever the thread
/// count. `threads <= 1` walks in place without spawning.
pub fn walk_batch<E: WalkEngine + Sync + ?Sized>(
    engine: &E,
    jobs: &[(Packet, &Path)],
    threads: usize,
) -> Vec<Result<WalkRecord, WalkError>> {
    let threads = effective_threads(threads, jobs.len());
    if threads <= 1 || jobs.len() < 2 {
        return jobs.iter().map(|(p, path)| engine.walk(*p, path)).collect();
    }
    let chunk = jobs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let workers: Vec<_> = jobs
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    slice
                        .iter()
                        .map(|(p, path)| engine.walk(*p, path))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(jobs.len());
        for w in workers {
            out.extend(w.join().expect("walk worker panicked"));
        }
        out
    })
}

/// An owned engine of either kind, so callers can be generic over the
/// [`WalkEngineConfig`] choice at runtime. Shared with the in-flight
/// battery ([`crate::inflight_conformance`]).
#[derive(Debug, Clone)]
pub(crate) enum Engine {
    Linear(NetworkWalker),
    Compiled(CompiledProgram),
}

impl Engine {
    pub(crate) fn of(prog: &RuleProgram, kind: EngineKind) -> Engine {
        match kind {
            EngineKind::Linear => Engine::Linear(prog.walker()),
            EngineKind::Compiled => Engine::Compiled(CompiledProgram::new(prog)),
        }
    }

    fn of_walker(w: &NetworkWalker, kind: EngineKind) -> Engine {
        match kind {
            EngineKind::Linear => Engine::Linear(w.clone()),
            EngineKind::Compiled => Engine::Compiled(CompiledProgram::from_walker(w)),
        }
    }

    pub(crate) fn as_dyn(&self) -> &(dyn WalkEngine + Sync) {
        match self {
            Engine::Linear(w) => w,
            Engine::Compiled(c) => c,
        }
    }

    /// Applies one update-plan barrier: the compiled engine patches
    /// per-device via `rebuild_delta`; the linear engine re-materialises
    /// from the already-patched program (its lookup *is* the rule list).
    pub(crate) fn patch(&mut self, prog_after: &RuleProgram, batch: &apple_dataplane::UpdateBatch) {
        match self {
            Engine::Linear(w) => *w = prog_after.walker(),
            Engine::Compiled(c) => c.rebuild_delta(batch),
        }
    }
}

/// Configuration for a packet-level replay.
#[derive(Debug, Clone)]
pub struct PacketReplayConfig {
    /// Planning knobs.
    pub apple: AppleConfig,
    /// Packet size for Mbps → pps conversion.
    pub packet_bytes: u32,
    /// Seconds per tick (= detector poll interval).
    pub tick_secs: f64,
    /// Walk engine and thread budget for the per-tick packet batteries.
    pub engine: WalkEngineConfig,
}

impl Default for PacketReplayConfig {
    fn default() -> Self {
        PacketReplayConfig {
            apple: AppleConfig::default(),
            packet_bytes: 1500,
            tick_secs: 1.0,
            engine: WalkEngineConfig::default(),
        }
    }
}

/// Outcome of a packet-level replay.
#[derive(Debug, Clone)]
pub struct PacketReplayOutcome {
    /// Counter-derived network loss rate per tick.
    pub loss: Series,
    /// Overload notifications the detector raised.
    pub trips: usize,
    /// Roll-back events.
    pub clears: usize,
    /// Total packets walked (sanity/scale indicator).
    pub packets_walked: u64,
}

/// Runs the packet-level replay.
///
/// # Errors
///
/// Propagates [`EngineError`] from planning; panics only on internal
/// inconsistencies (a mis-programmed data plane fails loudly in walks).
pub fn packet_replay(
    topo: &Topology,
    series: &TmSeries,
    cfg: &PacketReplayConfig,
) -> Result<PacketReplayOutcome, EngineError> {
    let apple = Apple::plan(topo, &series.mean(), &cfg.apple)?;

    // Register every instance with the detector.
    let mut detector = CounterDetector::new(cfg.tick_secs);
    for inst in apple.orchestrator().instances() {
        detector.register(
            inst.id(),
            OverloadModel::for_capacity(inst.spec().capacity_pps(cfg.packet_bytes)),
        );
    }

    let mut counters = PortCounters::new();
    let mut prev_counters = counters.clone();
    let mut loss = Series::new("packet-loss");
    let mut trips = 0usize;
    let mut clears = 0usize;
    let mut packets_walked = 0u64;
    // Compile the programmed data plane once for the whole series: the
    // replay only reads it.
    let engine = Engine::of_walker(&apple.program().walker, cfg.engine.engine);

    for (tick, tm) in series.iter().enumerate() {
        let scoped = apple.classes().with_rates_from(tm);
        // Walk one representative packet per (sub-class, prefix), credited
        // with the prefix's share of the sub-class packet count. The tick's
        // battery is collected first, then walked as one chunked batch.
        let mut jobs: Vec<(Packet, &Path)> = Vec::new();
        let mut credits: Vec<u64> = Vec::new();
        for class in &scoped {
            let pps = class.rate_pps(cfg.packet_bytes) * cfg.tick_secs;
            for sub in apple.subclasses().of_class(class.id) {
                let sub_packets = pps * sub.fraction();
                if sub_packets < 1.0 {
                    continue;
                }
                let total_share: f64 = sub
                    .prefixes
                    .iter()
                    .map(|&(_, len)| 2f64.powi(-(i32::from(len) - 24)))
                    .sum();
                for &(addr, len) in &sub.prefixes {
                    let share = 2f64.powi(-(i32::from(len) - 24)) / total_share;
                    let count = (sub_packets * share).round() as u64;
                    if count == 0 {
                        continue;
                    }
                    // A host inside this prefix (host bits = 1 where room).
                    let host_bit = if len < 32 { 1 } else { 0 };
                    let p = Packet::new(addr | host_bit, class.dst_prefix.0 | 9, 40_000, 80, 6);
                    jobs.push((p, &class.path));
                    credits.push(count);
                }
            }
        }
        let recs = walk_batch(engine.as_dyn(), &jobs, cfg.engine.threads);
        for (rec, count) in recs.iter().zip(&credits) {
            let rec = rec.as_ref().expect("programmed data plane walks cleanly");
            counters.observe_many(rec, *count);
            packets_walked += count;
        }
        // Poll: detection events + counter-derived loss.
        for (_, event) in detector.poll(&counters) {
            match event {
                DetectionEvent::Tripped => trips += 1,
                DetectionEvent::Cleared => clears += 1,
            }
        }
        let rates = counters.instance_rates_pps(&prev_counters, cfg.tick_secs);
        let mut offered = 0.0;
        let mut lost = 0.0;
        for (id, rate) in rates {
            let Some(inst) = apple.orchestrator().instance(id) else {
                continue;
            };
            let model = OverloadModel::for_capacity(inst.spec().capacity_pps(cfg.packet_bytes));
            offered += rate;
            lost += rate * model.loss_rate(rate);
        }
        loss.push(
            tick as f64,
            if offered > 0.0 { lost / offered } else { 0.0 },
        );
        prev_counters = counters.clone();
    }
    Ok(PacketReplayOutcome {
        loss,
        trips,
        clears,
        packets_walked,
    })
}

/// One representative packet of the differential conformance battery.
#[derive(Debug, Clone)]
pub struct ConformanceProbe {
    /// Where the probe came from (sub-class/prefix/variant), for reports.
    pub label: String,
    /// The untagged packet injected at the path's ingress.
    pub packet: Packet,
    /// The forwarding path the packet is walked along.
    pub path: Path,
}

/// Tallies from one conformance run. `old_exact`/`new_exact`/`mixed`
/// classify each intermediate-barrier walk; the final barrier's walks are
/// all required to be `new_exact`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConformanceReport {
    /// Barriers the plan applied (one per [`apple_dataplane::UpdateBatch`]).
    pub barriers: usize,
    /// Probes in the battery.
    pub probes: usize,
    /// Total packet walks performed across all barriers.
    pub walks: usize,
    /// Walks bitwise-identical to the pre-update program's walk.
    pub old_exact: usize,
    /// Walks bitwise-identical to the full recompile's walk.
    pub new_exact: usize,
    /// Walks that were a chain-consistent old/new mix (full NF chain, Fin
    /// tag on exit) — legal only at intermediate barriers.
    pub mixed: usize,
}

/// A violation of the update guarantee found by the battery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformanceError {
    /// A probe's walk at an intermediate barrier was neither the old walk,
    /// the new walk, nor a chain-consistent mix — a transient chain bypass
    /// or interference.
    BarrierWalk {
        /// Index of the offending barrier in the plan.
        barrier: usize,
        /// The probe's label.
        probe: String,
        /// What the walk produced.
        detail: String,
    },
    /// A probe's walk after the final barrier differs bitwise from the
    /// full recompile's walk.
    FinalWalk {
        /// The probe's label.
        probe: String,
        /// What the walk produced.
        detail: String,
    },
    /// The patched program after the final barrier is not rule-for-rule
    /// identical to the full recompile.
    FinalProgram,
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::BarrierWalk {
                barrier,
                probe,
                detail,
            } => write!(
                f,
                "probe {probe} at barrier {barrier}: walk is neither old, new nor a \
                 chain-consistent mix: {detail}"
            ),
            ConformanceError::FinalWalk { probe, detail } => write!(
                f,
                "probe {probe} after the final barrier differs from the full recompile: {detail}"
            ),
            ConformanceError::FinalProgram => {
                write!(f, "patched program differs from the full recompile")
            }
        }
    }
}

impl std::error::Error for ConformanceError {}

/// The outcome of one probe walk, as compared bitwise.
pub(crate) type Walk = Result<WalkRecord, WalkError>;

/// Header fields identifying a probe packet for dedup purposes.
type ProbeKey = (u32, u32, u16, u16, u8);

/// Builds the probe battery for a snapshot pair: one packet per
/// (sub-class, prefix, transport variant) of **both** snapshots (deduped),
/// plus one out-of-prefix control packet per distinct forwarding path.
/// Probes use the same representative-host convention as the packet replay
/// (`addr | 1` inside the prefix, `.9` in the destination prefix).
pub fn conformance_probes(old: &CompilerSnapshot, new: &CompilerSnapshot) -> Vec<ConformanceProbe> {
    let mut probes = Vec::new();
    let mut seen: BTreeSet<(ProbeKey, Path)> = BTreeSet::new();
    let key = |p: &Packet| (p.src_ip, p.dst_ip, p.src_port, p.dst_port, p.proto);
    let mut paths: BTreeSet<Vec<usize>> = BTreeSet::new();
    for s in old.subclasses.iter().chain(new.subclasses.iter()) {
        paths.insert(s.path.clone());
        let path = Path::new(s.path.iter().map(|&n| NodeId(n)).collect())
            .expect("snapshot paths are valid");
        let variants: Vec<(Option<u8>, Option<u16>)> = if s.dst_ports.is_empty() {
            vec![(s.proto, None)]
        } else {
            s.dst_ports.iter().map(|&p| (s.proto, Some(p))).collect()
        };
        for &(addr, len) in &s.prefixes {
            let host_bit = if len < 32 { 1 } else { 0 };
            for &(proto, port) in &variants {
                let p = Packet::new(
                    addr | host_bit,
                    s.dst_prefix.0 | 9,
                    40_000,
                    port.unwrap_or(80),
                    proto.unwrap_or(6),
                );
                if seen.insert((key(&p), path.clone())) {
                    probes.push(ConformanceProbe {
                        label: format!(
                            "{}/s{} {:#010x}/{} port {:?}",
                            s.class_name, s.sub, addr, len, port
                        ),
                        packet: p,
                        path: path.clone(),
                    });
                }
            }
        }
    }
    // Unclassified control traffic (192.168/16 — outside every 10/8 class
    // prefix and the 11/8 NAT pool) must pass by untouched on every path.
    for nodes in paths {
        let path = Path::new(nodes.iter().map(|&n| NodeId(n)).collect()).expect("paths are valid");
        let p = Packet::new(0xc0a8_0001, 0xc0a8_0002, 7, 7, 17);
        if seen.insert((key(&p), path.clone())) {
            probes.push(ConformanceProbe {
                label: format!("control path via {}", nodes[0]),
                packet: p,
                path,
            });
        }
    }
    probes
}

pub(crate) fn walk_detail(w: &Walk) -> String {
    match w {
        Ok(rec) => format!(
            "instances {:?}, host_tag {}, subclass {:?}",
            rec.instances, rec.packet.host_tag, rec.packet.subclass_tag
        ),
        Err(e) => format!("walk error: {e}"),
    }
}

/// Whether an intermediate-barrier walk is a legal chain-consistent mix:
/// the packet completed (`Ok`), and either traversed no instances while
/// one of the endpoint programs also leaves it untouched, or traversed a
/// complete NF chain of the deployment (its instance sequence maps to the
/// `stage_nfs` of some sub-class in either snapshot) and exited `Fin`.
pub(crate) fn chain_consistent(
    walk: &Walk,
    old: &Walk,
    new: &Walk,
    nf_of: &BTreeMap<InstanceId, NfType>,
    chains: &BTreeSet<Vec<NfType>>,
) -> bool {
    let Ok(rec) = walk else {
        return false;
    };
    if rec.instances.is_empty() {
        // No processing: legal only if one endpoint program also passes
        // this packet by (otherwise it is a chain bypass).
        let untouched = |w: &Walk| matches!(w, Ok(r) if r.instances.is_empty());
        return untouched(old) || untouched(new);
    }
    if rec.packet.host_tag != HostTag::Fin {
        // Classified but stranded mid-chain.
        return false;
    }
    let Some(seq) = rec
        .instances
        .iter()
        .map(|i| nf_of.get(i).copied())
        .collect::<Option<Vec<NfType>>>()
    else {
        return false;
    };
    chains.contains(&seq)
}

/// Replays the probe battery through every intermediate barrier of the
/// incremental update plan from `old` to `new`, checking the three-tier
/// guarantee:
///
/// 1. interference freedom always (a successful walk's switch sequence is
///    the forwarding path, by construction of the walker);
/// 2. no transient chain bypass — at every barrier each probe's walk is
///    bitwise the old walk, bitwise the new walk, or a chain-consistent
///    old/new mix (complete NF chain of the deployment, `Fin` on exit);
/// 3. after the final barrier every walk is bitwise identical to the full
///    recompile's walk, and the patched program equals it rule for rule.
///
/// # Errors
///
/// The first [`ConformanceError`] found, naming the barrier and probe.
pub fn differential_conformance(
    old: &CompilerSnapshot,
    new: &CompilerSnapshot,
) -> Result<ConformanceReport, ConformanceError> {
    differential_conformance_with(old, new, &WalkEngineConfig::default())
}

/// [`differential_conformance`] with an explicit engine choice and thread
/// budget. The two engines must accept and reject exactly the same plans —
/// the walk-bench battery runs both and diffs the verdicts.
///
/// # Errors
///
/// The first [`ConformanceError`] found, naming the barrier and probe.
pub fn differential_conformance_with(
    old: &CompilerSnapshot,
    new: &CompilerSnapshot,
    cfg: &WalkEngineConfig,
) -> Result<ConformanceReport, ConformanceError> {
    let old_prog = compile(old);
    conformance_core(old_prog, None, old, new, cfg)
}

/// The crash-recovery variant of [`differential_conformance`]: the "old"
/// side is not a compiled snapshot but the **actual surviving switch
/// fabric** (`installed`), which after a mid-sync crash sits at some
/// barrier prefix between one sync's program and the next. Because the
/// fabric is mid-transition, a walk during repair may legally look like
/// the *pre-crash-sync* program (`old`, the context one sync before the
/// crash) rather than the torn fabric itself — probes stranded by the
/// torn state heal through `old`-like behaviour on their way to `new`.
/// The acceptance set per barrier is therefore: bitwise-installed,
/// bitwise-`old`, bitwise-`new`, or a chain-consistent mix against either
/// endpoint — and after the final barrier, bitwise-`new` only.
///
/// # Errors
///
/// The first [`ConformanceError`] found, naming the barrier and probe.
pub fn repair_conformance(
    installed: &RuleProgram,
    old: &CompilerSnapshot,
    new: &CompilerSnapshot,
) -> Result<ConformanceReport, ConformanceError> {
    repair_conformance_with(installed, old, new, &WalkEngineConfig::default())
}

/// [`repair_conformance`] with an explicit engine choice and thread
/// budget.
///
/// # Errors
///
/// The first [`ConformanceError`] found, naming the barrier and probe.
pub fn repair_conformance_with(
    installed: &RuleProgram,
    old: &CompilerSnapshot,
    new: &CompilerSnapshot,
    cfg: &WalkEngineConfig,
) -> Result<ConformanceReport, ConformanceError> {
    conformance_core(installed.clone(), Some(compile(old)), old, new, cfg)
}

/// Shared engine of the two conformance batteries: walk every probe at
/// every intermediate barrier of the update plan from `old_prog` to
/// `compile(new)`, enforcing bitwise-old / bitwise-new / chain-consistent
/// mix (plus bitwise-`prev` when a pre-transition program is given), then
/// require bitwise-final convergence.
fn conformance_core(
    old_prog: RuleProgram,
    prev_prog: Option<RuleProgram>,
    old: &CompilerSnapshot,
    new: &CompilerSnapshot,
    cfg: &WalkEngineConfig,
) -> Result<ConformanceReport, ConformanceError> {
    let new_prog = compile(new);
    let plan = diff(&old_prog, &new_prog);
    let probes = conformance_probes(old, new);
    let jobs: Vec<(Packet, &Path)> = probes.iter().map(|p| (p.packet, &p.path)).collect();

    let old_engine = Engine::of(&old_prog, cfg.engine);
    let new_engine = Engine::of(&new_prog, cfg.engine);
    let old_walks: Vec<Walk> = walk_batch(old_engine.as_dyn(), &jobs, cfg.threads);
    let new_walks: Vec<Walk> = walk_batch(new_engine.as_dyn(), &jobs, cfg.threads);
    // Repair runs start from a torn fabric: probes stranded by the crash
    // heal through the pre-transition program's behaviour before reaching
    // `new`, so those walks are a third legal reference alongside old/new.
    let prev_walks: Option<Vec<Walk>> = prev_prog.map(|prog| {
        let engine = Engine::of(&prog, cfg.engine);
        walk_batch(engine.as_dyn(), &jobs, cfg.threads)
    });

    let mut nf_of: BTreeMap<InstanceId, NfType> = BTreeMap::new();
    let mut chains: BTreeSet<Vec<NfType>> = BTreeSet::new();
    for s in old.subclasses.iter().chain(new.subclasses.iter()) {
        for (j, &inst) in s.instances.iter().enumerate() {
            nf_of.insert(inst, s.stage_nfs[j]);
        }
        if !s.stage_nfs.is_empty() {
            chains.insert(s.stage_nfs.clone());
        }
    }

    let mut report = ConformanceReport {
        probes: probes.len(),
        ..ConformanceReport::default()
    };
    let mut patched = old_prog;
    // The barrier loop exercises the incremental path end-to-end: the
    // compiled engine is patched per-device via `rebuild_delta`, never
    // rebuilt from scratch.
    let mut engine = old_engine;
    let total = plan.batches().len();
    for (bi, batch) in plan.batches().iter().enumerate() {
        apply_batch_unchecked(&mut patched, batch);
        engine.patch(&patched, batch);
        report.barriers += 1;
        let got_walks = walk_batch(engine.as_dyn(), &jobs, cfg.threads);
        let last = bi + 1 == total;
        for (i, probe) in probes.iter().enumerate() {
            let got = got_walks[i].clone();
            report.walks += 1;
            if got == new_walks[i] {
                report.new_exact += 1;
            } else if last {
                return Err(ConformanceError::FinalWalk {
                    probe: probe.label.clone(),
                    detail: walk_detail(&got),
                });
            } else if got == old_walks[i] || prev_walks.as_ref().is_some_and(|pw| got == pw[i]) {
                report.old_exact += 1;
            } else if prev_walks.is_some()
                && matches!(got, Err(WalkError::NoRuleAtSwitch(_)))
                && matches!(old_walks[i], Err(WalkError::NoRuleAtSwitch(_)))
            {
                // Repair mode only: a probe black-holed by the torn fabric
                // may stay black-holed while scaffolding lands, with the
                // stranding switch moving along the path. Still a drop in
                // both states — but a punt to a missing host is never
                // excused, so a make-before-break violation in the repair
                // plan itself remains detectable.
                report.old_exact += 1;
            } else if chain_consistent(&got, &old_walks[i], &new_walks[i], &nf_of, &chains)
                || prev_walks.as_ref().is_some_and(|pw| {
                    chain_consistent(&got, &pw[i], &new_walks[i], &nf_of, &chains)
                })
            {
                report.mixed += 1;
            } else {
                return Err(ConformanceError::BarrierWalk {
                    barrier: bi,
                    probe: probe.label.clone(),
                    detail: walk_detail(&got),
                });
            }
        }
    }
    if patched != new_prog {
        return Err(ConformanceError::FinalProgram);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apple_core::classes::ClassConfig;
    use apple_topology::zoo;
    use apple_traffic::SeriesConfig;

    fn cfg() -> PacketReplayConfig {
        PacketReplayConfig {
            apple: AppleConfig {
                classes: ClassConfig {
                    max_classes: 8,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn bursty() -> (apple_topology::Topology, TmSeries) {
        let topo = zoo::internet2();
        let series = TmSeries::generate(
            &topo,
            &SeriesConfig {
                snapshots: 40,
                burst_pairs: 2,
                burst_scale: 10.0,
                ..SeriesConfig::paper(91)
            },
        );
        (topo, series)
    }

    #[test]
    fn walks_packets_and_detects_bursts() {
        let (topo, series) = bursty();
        let out = packet_replay(&topo, &series, &cfg()).unwrap();
        assert_eq!(out.loss.len(), series.len());
        assert!(out.packets_walked > 0);
        // The 10x bursts must overload something.
        assert!(out.trips > 0, "detector never fired");
        // And the roll-back thresholds must clear after bursts subside.
        assert!(out.clears > 0, "detector never cleared");
        for (_, v) in out.loss.samples() {
            assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn quiet_series_stays_clean() {
        let topo = zoo::internet2();
        let series = TmSeries::generate(
            &topo,
            &SeriesConfig {
                snapshots: 20,
                burst_pairs: 0,
                total_mbps: 800.0,
                mvr_a: 0.1,
                ..SeriesConfig::paper(92)
            },
        );
        let out = packet_replay(&topo, &series, &cfg()).unwrap();
        assert_eq!(out.trips, 0, "phantom overload at low load");
        assert!(out.loss.max() < 0.02, "loss {} at low load", out.loss.max());
    }

    #[test]
    fn counter_rates_track_offered_load() {
        // With a constant series, the counter-derived per-tick total must
        // match the analytic offered load of the deployment.
        let topo = zoo::internet2();
        let series = TmSeries::generate(
            &topo,
            &SeriesConfig {
                snapshots: 6,
                burst_pairs: 0,
                mvr_a: 0.0, // no noise
                diurnal_depth: 0.0,
                weekly_depth: 0.0,
                total_mbps: 1_500.0,
                ..SeriesConfig::paper(93)
            },
        );
        // All classes (no truncation) so the walked volume covers the full
        // matrix.
        let full_cfg = PacketReplayConfig {
            apple: AppleConfig::default(),
            ..PacketReplayConfig::default()
        };
        let out = packet_replay(&topo, &series, &full_cfg).unwrap();
        // Sub-1-packet sub-classes and rounding cause small undercount;
        // just require the order of magnitude to be right.
        let expected_pps = 1_500.0 * 1e6 / (1_500.0 * 8.0); // = 125_000
        let per_tick = out.packets_walked as f64 / series.len() as f64;
        assert!(
            per_tick > 0.5 * expected_pps && per_tick < 2.0 * expected_pps,
            "per-tick packets {per_tick} vs expected ~{expected_pps}"
        );
    }

    use apple_dataplane::compiler::SubclassSpec;
    use apple_nf::{InstanceId, NfType};

    /// A three-switch line with one two-stage class; `fw`/`ids` pick the
    /// serving instances so tests can model churn.
    fn line_snapshot(fw: u64, ids: u64) -> CompilerSnapshot {
        CompilerSnapshot {
            switches: vec![0, 1, 2],
            hosts: vec![1, 2],
            rewriters: Vec::new(),
            subclasses: vec![SubclassSpec {
                class: 0,
                class_name: "c0".into(),
                sub: 0,
                tag: 0,
                global: false,
                path: vec![0, 1, 2],
                src_prefix: (0x0a00_0000, 24),
                dst_prefix: (0x0a00_0100, 24),
                proto: Some(6),
                dst_ports: vec![80, 443],
                prefixes: vec![(0x0a00_0000, 25), (0x0a00_0080, 25)],
                stage_positions: vec![1, 2],
                stage_nfs: vec![NfType::Firewall, NfType::Ids],
                instances: vec![InstanceId(fw), InstanceId(ids)],
            }],
            compress: true,
        }
    }

    #[test]
    fn conformance_identity_is_trivially_clean() {
        let snap = line_snapshot(0, 1);
        let report = differential_conformance(&snap, &snap).unwrap();
        assert_eq!(report.barriers, 0, "diff(p, p) must be empty");
        assert_eq!(report.walks, 0);
        // 2 prefixes x 2 ports + 1 control probe.
        assert_eq!(report.probes, 5);
    }

    #[test]
    fn conformance_instance_swap_passes_every_barrier() {
        let a = line_snapshot(0, 1);
        let b = line_snapshot(7, 1);
        let report = differential_conformance(&a, &b).unwrap();
        assert!(report.barriers >= 2, "swap needs add + remove barriers");
        assert_eq!(
            report.walks,
            report.old_exact + report.new_exact + report.mixed
        );
        // The control probe (and any probe not yet flipped) walks old; the
        // final barrier forces everything to new.
        assert!(report.new_exact > 0);
        // And the reverse direction restores the original program.
        differential_conformance(&b, &a).unwrap();
    }

    #[test]
    fn conformance_covers_class_arrival_and_departure() {
        let empty = CompilerSnapshot {
            switches: vec![0, 1, 2],
            ..CompilerSnapshot::default()
        };
        let full = line_snapshot(0, 1);
        let up = differential_conformance(&empty, &full).unwrap();
        assert!(up.barriers > 0 && up.new_exact > 0);
        let down = differential_conformance(&full, &empty).unwrap();
        // Departure flips classification first, so every probe converges on
        // the new (pass-by) behaviour immediately.
        assert!(down.barriers > 0 && down.new_exact > 0);
        assert_eq!(down.walks, down.old_exact + down.new_exact + down.mixed);
    }

    #[test]
    fn conformance_reports_identical_across_engines_and_threads() {
        let a = line_snapshot(0, 1);
        let b = line_snapshot(7, 1);
        let base = differential_conformance_with(
            &a,
            &b,
            &WalkEngineConfig {
                engine: EngineKind::Linear,
                threads: 1,
            },
        )
        .unwrap();
        for engine in [EngineKind::Linear, EngineKind::Compiled] {
            for threads in [1, 2, 8] {
                let got =
                    differential_conformance_with(&a, &b, &WalkEngineConfig { engine, threads })
                        .unwrap();
                assert_eq!(got, base, "engine {} threads {threads}", engine.name());
            }
        }
    }

    #[test]
    fn replay_outcome_identical_across_engines_and_threads() {
        let (topo, series) = bursty();
        let base = packet_replay(&topo, &series, &cfg()).unwrap();
        for engine in [EngineKind::Linear, EngineKind::Compiled] {
            for threads in [1, 4] {
                let out = packet_replay(
                    &topo,
                    &series,
                    &PacketReplayConfig {
                        engine: WalkEngineConfig { engine, threads },
                        ..cfg()
                    },
                )
                .unwrap();
                assert_eq!(out.packets_walked, base.packets_walked);
                assert_eq!(out.trips, base.trips);
                assert_eq!(out.clears, base.clears);
                assert_eq!(
                    out.loss.samples(),
                    base.loss.samples(),
                    "engine {} threads {threads}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn conformance_flags_a_chain_bypass() {
        // Forged plan: apply only the *remove* barriers of a departure (no
        // classification flip first) — in-flight-tagged packets strand.
        use apple_dataplane::diff::UpdateBatch;

        let full = line_snapshot(0, 1);
        let empty = CompilerSnapshot {
            switches: vec![0, 1, 2],
            ..CompilerSnapshot::default()
        };
        let old_prog = compile(&full);
        let new_prog = compile(&empty);
        let plan = diff(&old_prog, &new_prog);
        let mut patched = old_prog.clone();
        // Apply host-removal barriers while classification still tags.
        for batch in plan.batches() {
            if matches!(batch, UpdateBatch::Host(h) if h.drop_host) {
                apply_batch_unchecked(&mut patched, batch);
            }
        }
        let probes = conformance_probes(&full, &empty);
        let walker = patched.walker();
        let stranded = probes.iter().any(|p| {
            matches!(
                walker.walk(p.packet, &p.path),
                Err(WalkError::NoHostAtSwitch(_))
            )
        });
        assert!(
            stranded,
            "removing hosts before the classification flip must strand tagged packets"
        );
    }
}
