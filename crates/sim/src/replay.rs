//! The Fig. 12 experiment: replay a time-varying traffic-matrix series
//! against a planned APPLE deployment and record the network-wide packet
//! loss rate over time, with and without fast failover.
//!
//! Each snapshot is one simulation tick (the paper replays its matrices
//! "in time order", one second per snapshot for UNIV1). At each tick:
//!
//! 1. per-class rates are refreshed from the snapshot,
//! 2. per-instance offered load follows the Dynamic Handler's sub-class
//!    shares,
//! 3. instances crossing the overload trip threshold notify the handler
//!    (when fast failover is enabled), which re-balances or spawns a
//!    ClickOS helper (reconfiguration ≈ 30 ms — effective the same tick;
//!    a normal-VM helper pays its full boot across ticks),
//! 4. packet loss per instance follows the Fig. 6 overload curve, and the
//!    network-wide loss rate is recorded,
//! 5. when every overloaded instance clears (hysteresis), the distribution
//!    rolls back and helpers are cancelled.

use apple_core::classes::ClassId;
use apple_core::controller::{Apple, AppleConfig};
use apple_core::engine::EngineError;
use apple_core::failover::{DynamicHandler, FailoverAction};
use apple_nf::{InstanceId, OverloadModel, TimingModel, VnfSpec};
use apple_telemetry::{Recorder, RecorderExt, NOOP};
use apple_topology::Topology;
use apple_traffic::TmSeries;
use std::collections::BTreeMap;
use std::time::Duration;

use crate::metrics::Series;

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Deployment planning knobs (classes, engine, host size).
    pub apple: AppleConfig,
    /// Enable the Dynamic Handler (fast failover). Disabling it gives the
    /// "without fast failover" curve of Fig. 12.
    pub fast_failover: bool,
    /// Packet size for Mbps → pps conversion (1500 B in the prototype).
    pub packet_bytes: u32,
    /// Seed for the timing model's boot jitter.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            apple: AppleConfig::default(),
            fast_failover: true,
            packet_bytes: 1500,
            seed: 0,
        }
    }
}

/// Result of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Network-wide packet loss rate per tick.
    pub loss: Series,
    /// Extra cores consumed by failover helpers per tick.
    pub helper_cores: Series,
    /// Peak helper cores across the run (the §IX-E "< 17 cores" figure).
    pub peak_helper_cores: u32,
    /// Number of overload notifications handled.
    pub notifications: usize,
    /// Number of helper instances spawned.
    pub helpers_spawned: usize,
    /// Steady-state cores of the planned deployment (before failover).
    pub planned_cores: u32,
}

/// Replays `series` on a deployment planned from the series mean.
///
/// # Errors
///
/// Propagates [`EngineError`] from planning.
pub fn replay(
    topo: &Topology,
    series: &TmSeries,
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, EngineError> {
    replay_recorded(topo, series, cfg, &NOOP)
}

/// [`replay`] with telemetry: wraps planning and the tick loop in
/// `sim.plan` / `sim.replay` spans, forwards every overload notification
/// through [`DynamicHandler::handle_overload_recorded`] (so `failover.*`
/// counters accumulate), counts `sim.notifications`, observes helper boot
/// delays (`sim.helper_boot_ms`) and gauges `sim.peak_helper_cores` /
/// `sim.planned_cores` at the end of the run.
///
/// # Errors
///
/// Propagates [`EngineError`] from planning.
pub fn replay_recorded(
    topo: &Topology,
    series: &TmSeries,
    cfg: &ReplayConfig,
    rec: &dyn Recorder,
) -> Result<ReplayOutcome, EngineError> {
    let apple = {
        let _s = rec.span("sim.plan");
        Apple::plan_recorded(topo, &series.mean(), &cfg.apple, rec)?
    };
    let _replay_span = rec.span("sim.replay");
    let planned_cores = apple.placement().total_cores();
    let mut handler = apple.dynamic_handler();
    let (classes, _placement, _plan, _program, mut orch) = apple.into_parts();
    let mut timing = TimingModel::paper(cfg.seed);

    let mut loss = Series::new("loss-rate");
    let mut helper_cores = Series::new("helper-cores");
    let mut notifications = 0usize;
    let mut helpers_spawned = 0usize;
    // Helpers still booting: instance -> ready tick.
    let mut booting: BTreeMap<InstanceId, usize> = BTreeMap::new();
    let mut overloaded: std::collections::BTreeSet<InstanceId> = Default::default();

    for (tick, tm) in series.iter().enumerate() {
        // 1. Refresh class rates.
        let scoped = classes.with_rates_from(tm);
        let rates: BTreeMap<ClassId, f64> = scoped.iter().map(|c| (c.id, c.rate_mbps)).collect();

        // Helpers finish booting.
        booting.retain(|_, ready| *ready > tick);

        // 2–3. Offered load per instance and overload handling.
        let mut tick_lost = 0.0f64;
        let mut tick_offered = 0.0f64;
        let mut trips: Vec<InstanceId> = Vec::new();
        let loads = instance_loads(&handler, &rates);
        for (&inst, &mbps) in &loads {
            let Some(vi) = orch.instance(inst) else {
                continue;
            };
            let model = OverloadModel::for_capacity(vi.spec().capacity_pps(cfg.packet_bytes));
            let pps = mbps * 1e6 / (f64::from(cfg.packet_bytes) * 8.0);
            // A still-booting helper forwards nothing; its share is lost
            // outright (this is why ClickOS reconfiguration matters).
            if booting.contains_key(&inst) {
                tick_offered += pps;
                tick_lost += pps;
                continue;
            }
            tick_offered += pps;
            tick_lost += pps * model.loss_rate(pps);
            if model.is_overloaded(pps) {
                // Instances re-notify while they stay overloaded — each
                // notification halves the load of the sub-classes through
                // them, so repeated notifications converge geometrically.
                trips.push(inst);
                overloaded.insert(inst);
            } else if model.is_cleared(pps) {
                overloaded.remove(&inst);
            }
        }

        if cfg.fast_failover {
            for inst in trips {
                notifications += 1;
                rec.counter("sim.notifications", 1);
                match handler.handle_overload_recorded(inst, &rates, &scoped, &mut orch, rec) {
                    Ok(FailoverAction::SpawnedHelper { instance, nf, .. }) => {
                        helpers_spawned += 1;
                        // ClickOS helpers reconfigure in ~30 ms (same
                        // tick); ordinary VMs pay a full boot.
                        let spec = VnfSpec::of(nf);
                        let delay_ms = timing.provision(spec.clickos, spec.clickos);
                        rec.observe_duration("sim.helper_boot_ms", Duration::from_millis(delay_ms));
                        let ready = tick + (delay_ms / 1_000) as usize;
                        if ready > tick {
                            booting.insert(instance, ready);
                        }
                    }
                    Ok(_) => {}
                    Err(_) => {
                        // No capacity anywhere: the overload persists and
                        // the loss curve shows it.
                        rec.counter("sim.failover_errors", 1);
                    }
                }
            }
            // 5. Roll back once nothing is overloaded any more.
            if overloaded.is_empty() && handler.helper_cores() > 0 {
                handler.roll_back_recorded(&mut orch, rec);
            }
        }

        let rate = if tick_offered > 0.0 {
            tick_lost / tick_offered
        } else {
            0.0
        };
        loss.push(tick as f64, rate);
        helper_cores.push(tick as f64, f64::from(handler.helper_cores()));
    }

    rec.gauge(
        "sim.peak_helper_cores",
        f64::from(handler.peak_helper_cores()),
    );
    rec.gauge("sim.planned_cores", f64::from(planned_cores));
    Ok(ReplayOutcome {
        loss,
        helper_cores,
        peak_helper_cores: handler.peak_helper_cores(),
        notifications,
        helpers_spawned,
        planned_cores,
    })
}

/// Offered load per instance in Mbps under the handler's current shares.
fn instance_loads(
    handler: &DynamicHandler,
    rates: &BTreeMap<ClassId, f64>,
) -> BTreeMap<InstanceId, f64> {
    let mut loads: BTreeMap<InstanceId, f64> = BTreeMap::new();
    for s in handler.shares() {
        let mbps = s.fraction * rates.get(&s.class).copied().unwrap_or(0.0);
        for &inst in &s.instances {
            *loads.entry(inst).or_insert(0.0) += mbps;
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use apple_core::classes::ClassConfig;
    use apple_topology::zoo;
    use apple_traffic::SeriesConfig;

    fn small_replay_cfg(fast_failover: bool) -> ReplayConfig {
        ReplayConfig {
            apple: AppleConfig {
                classes: ClassConfig {
                    max_classes: 10,
                    ..Default::default()
                },
                ..Default::default()
            },
            fast_failover,
            ..Default::default()
        }
    }

    fn bursty_series(topo: &Topology) -> TmSeries {
        TmSeries::generate(
            topo,
            &SeriesConfig {
                snapshots: 60,
                burst_pairs: 2,
                burst_scale: 8.0,
                ..SeriesConfig::paper(5)
            },
        )
    }

    #[test]
    fn replay_produces_full_series() {
        let topo = zoo::internet2();
        let series = bursty_series(&topo);
        let out = replay(&topo, &series, &small_replay_cfg(true)).unwrap();
        assert_eq!(out.loss.len(), series.len());
        assert_eq!(out.helper_cores.len(), series.len());
        assert!(out.planned_cores > 0);
    }

    #[test]
    fn failover_reduces_loss_under_bursts() {
        let topo = zoo::internet2();
        let series = bursty_series(&topo);
        let with = replay(&topo, &series, &small_replay_cfg(true)).unwrap();
        let without = replay(&topo, &series, &small_replay_cfg(false)).unwrap();
        assert!(
            with.loss.mean() <= without.loss.mean() + 1e-12,
            "failover made things worse: {} vs {}",
            with.loss.mean(),
            without.loss.mean()
        );
        // The no-failover run must actually lose packets during bursts,
        // otherwise the comparison is vacuous.
        assert!(without.loss.max() > 0.0, "bursts never overloaded anything");
    }

    #[test]
    fn loss_rates_are_valid_probabilities() {
        let topo = zoo::internet2();
        let series = bursty_series(&topo);
        let out = replay(&topo, &series, &small_replay_cfg(true)).unwrap();
        for (_, v) in out.loss.samples() {
            assert!((0.0..=1.0).contains(v), "loss {v} out of range");
        }
    }

    #[test]
    fn helpers_roll_back_after_bursts() {
        let topo = zoo::internet2();
        let series = bursty_series(&topo);
        let out = replay(&topo, &series, &small_replay_cfg(true)).unwrap();
        // By the end of the series (bursts long over) no helper cores
        // should remain committed.
        let tail = out.helper_cores.samples().last().unwrap().1;
        assert_eq!(tail, 0.0, "helpers not rolled back");
    }

    #[test]
    fn no_failover_run_spawns_nothing() {
        let topo = zoo::internet2();
        let series = bursty_series(&topo);
        let out = replay(&topo, &series, &small_replay_cfg(false)).unwrap();
        assert_eq!(out.helpers_spawned, 0);
        assert_eq!(out.notifications, 0);
        assert_eq!(out.peak_helper_cores, 0);
    }
}
