//! The Fig. 12 experiment: replay a time-varying traffic-matrix series
//! against a planned APPLE deployment and record the network-wide packet
//! loss rate over time, with and without fast failover.
//!
//! Each snapshot is one simulation tick (the paper replays its matrices
//! "in time order", one second per snapshot for UNIV1). At each tick:
//!
//! 1. per-class rates are refreshed from the snapshot,
//! 2. per-instance offered load follows the Dynamic Handler's sub-class
//!    shares,
//! 3. instances crossing the overload trip threshold notify the handler
//!    (when fast failover is enabled), which re-balances or spawns a
//!    ClickOS helper (reconfiguration ≈ 30 ms — effective the same tick;
//!    a normal-VM helper pays its full boot across ticks),
//! 4. packet loss per instance follows the Fig. 6 overload curve, and the
//!    network-wide loss rate is recorded,
//! 5. when every overloaded instance clears (hysteresis), the distribution
//!    rolls back and helpers are cancelled.

use apple_core::classes::ClassId;
use apple_core::controller::{Apple, AppleConfig};
use apple_core::engine::EngineError;
use apple_core::failover::{DynamicHandler, FailoverAction, FailoverError};
use apple_core::orchestrator::ControlOps;
use apple_faults::{FaultKind, FaultPlan, FaultPlanConfig};
use apple_nf::{InstanceId, OverloadModel, TimingModel, VnfSpec};
use apple_telemetry::{Recorder, RecorderExt, NOOP};
use apple_topology::{NodeId, Topology};
use apple_traffic::TmSeries;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use crate::metrics::Series;

/// Errors a replay can hit: planning the deployment, or bootstrapping the
/// Dynamic Handler from it.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The Optimization Engine could not plan the deployment.
    Plan(EngineError),
    /// The Dynamic Handler rejected the deployment (inconsistent plan).
    Failover(FailoverError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Plan(e) => write!(f, "planning failed: {e}"),
            ReplayError::Failover(e) => write!(f, "failover bootstrap failed: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<EngineError> for ReplayError {
    fn from(e: EngineError) -> Self {
        ReplayError::Plan(e)
    }
}

impl From<FailoverError> for ReplayError {
    fn from(e: FailoverError) -> Self {
        ReplayError::Failover(e)
    }
}

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Deployment planning knobs (classes, engine, host size).
    pub apple: AppleConfig,
    /// Enable the Dynamic Handler (fast failover). Disabling it gives the
    /// "without fast failover" curve of Fig. 12.
    pub fast_failover: bool,
    /// Packet size for Mbps → pps conversion (1500 B in the prototype).
    pub packet_bytes: u32,
    /// Seed for the timing model's boot jitter.
    pub seed: u64,
    /// Optional fault schedule: crashes, host failures and flaky control
    /// operations injected during the replay. `None` replays faithfully.
    pub faults: Option<FaultPlanConfig>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            apple: AppleConfig::default(),
            fast_failover: true,
            packet_bytes: 1500,
            seed: 0,
            faults: None,
        }
    }
}

/// Result of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Network-wide packet loss rate per tick.
    pub loss: Series,
    /// Extra cores consumed by failover helpers per tick.
    pub helper_cores: Series,
    /// Peak helper cores across the run (the §IX-E "< 17 cores" figure).
    pub peak_helper_cores: u32,
    /// Number of overload notifications handled.
    pub notifications: usize,
    /// Number of helper instances spawned.
    pub helpers_spawned: usize,
    /// Steady-state cores of the planned deployment (before failover).
    pub planned_cores: u32,
    /// Fault events injected (crashes + host failures), 0 without faults.
    pub faults_injected: usize,
    /// Ticks spent in degraded mode (some traffic shed).
    pub degraded_ticks: usize,
}

/// Replays `series` on a deployment planned from the series mean.
///
/// # Errors
///
/// [`ReplayError`] from planning or handler bootstrap.
pub fn replay(
    topo: &Topology,
    series: &TmSeries,
    cfg: &ReplayConfig,
) -> Result<ReplayOutcome, ReplayError> {
    replay_recorded(topo, series, cfg, &NOOP)
}

/// [`replay`] with telemetry: wraps planning and the tick loop in
/// `sim.plan` / `sim.replay` spans, forwards every overload notification
/// through [`DynamicHandler::handle_overload_recorded`] (so `failover.*`
/// counters accumulate), counts `sim.notifications`, observes helper boot
/// delays (`sim.helper_boot_ms`) and gauges `sim.peak_helper_cores` /
/// `sim.planned_cores` at the end of the run.
///
/// # Errors
///
/// [`ReplayError`] from planning or handler bootstrap.
pub fn replay_recorded(
    topo: &Topology,
    series: &TmSeries,
    cfg: &ReplayConfig,
    rec: &dyn Recorder,
) -> Result<ReplayOutcome, ReplayError> {
    let apple = {
        let _s = rec.span("sim.plan");
        Apple::plan_recorded(topo, &series.mean(), &cfg.apple, rec)?
    };
    let _replay_span = rec.span("sim.replay");
    let planned_cores = apple.placement().total_cores();
    let mut handler = apple.dynamic_handler()?;
    let (classes, _placement, _plan, _program, mut orch) = apple.into_parts();
    let mut timing = TimingModel::paper(cfg.seed);
    let fault_plan = cfg.faults.as_ref().map(FaultPlan::generate);
    let mut ops = match &fault_plan {
        Some(plan) => ControlOps::with_injector(cfg.seed, Box::new(plan.injector())),
        None => ControlOps::reliable(cfg.seed),
    };

    let mut loss = Series::new("loss-rate");
    let mut helper_cores = Series::new("helper-cores");
    let mut notifications = 0usize;
    let mut helpers_spawned = 0usize;
    let mut faults_injected = 0usize;
    let mut degraded_ticks = 0usize;
    // Helpers still booting: instance -> ready tick.
    let mut booting: BTreeMap<InstanceId, usize> = BTreeMap::new();
    let mut overloaded: std::collections::BTreeSet<InstanceId> = Default::default();

    for (tick, tm) in series.iter().enumerate() {
        // 1. Refresh class rates.
        let scoped = classes.with_rates_from(tm);
        let rates: BTreeMap<ClassId, f64> = scoped.iter().map(|c| (c.id, c.rate_mbps)).collect();

        // 1b. Inject this tick's scheduled faults; the handler repairs or
        // sheds, and once capacity returns, restores parked sub-classes.
        if let Some(plan) = &fault_plan {
            for ev in plan.events_at(tick as u64).copied().collect::<Vec<_>>() {
                faults_injected += apply_fault(
                    &ev.kind,
                    &rates,
                    &scoped,
                    &mut handler,
                    &mut orch,
                    &mut ops,
                    rec,
                );
            }
            if handler.is_degraded() {
                let _ = handler.recover_degraded(&rates, &scoped, &mut orch, &mut ops, rec);
            }
            // Crashed instances can no longer clear their own overload.
            overloaded.retain(|i| orch.instance(*i).is_some());
            booting.retain(|i, _| orch.instance(*i).is_some());
        }

        // Helpers finish booting.
        booting.retain(|_, ready| *ready > tick);

        // 2–3. Offered load per instance and overload handling.
        let mut tick_lost = 0.0f64;
        let mut tick_offered = 0.0f64;
        let mut trips: Vec<InstanceId> = Vec::new();
        let loads = instance_loads(&handler, &rates);
        for (&inst, &mbps) in &loads {
            let Some(vi) = orch.instance(inst) else {
                continue;
            };
            let model = OverloadModel::for_capacity(vi.spec().capacity_pps(cfg.packet_bytes));
            let pps = mbps * 1e6 / (f64::from(cfg.packet_bytes) * 8.0);
            // A still-booting helper forwards nothing; its share is lost
            // outright (this is why ClickOS reconfiguration matters).
            if booting.contains_key(&inst) {
                tick_offered += pps;
                tick_lost += pps;
                continue;
            }
            tick_offered += pps;
            tick_lost += pps * model.loss_rate(pps);
            if model.is_overloaded(pps) {
                // Instances re-notify while they stay overloaded — each
                // notification halves the load of the sub-classes through
                // them, so repeated notifications converge geometrically.
                trips.push(inst);
                overloaded.insert(inst);
            } else if model.is_cleared(pps) {
                overloaded.remove(&inst);
            }
        }

        if cfg.fast_failover {
            for inst in trips {
                notifications += 1;
                rec.counter("sim.notifications", 1);
                match handler.handle_overload_recorded(inst, &rates, &scoped, &mut orch, rec) {
                    Ok(FailoverAction::SpawnedHelper { instance, nf, .. }) => {
                        helpers_spawned += 1;
                        // ClickOS helpers reconfigure in ~30 ms (same
                        // tick); ordinary VMs pay a full boot.
                        let spec = VnfSpec::of(nf);
                        let delay_ms = timing.provision(spec.clickos, spec.clickos);
                        rec.observe_duration("sim.helper_boot_ms", Duration::from_millis(delay_ms));
                        let ready = tick + (delay_ms / 1_000) as usize;
                        if ready > tick {
                            booting.insert(instance, ready);
                        }
                    }
                    Ok(_) => {}
                    Err(_) => {
                        // No capacity anywhere: the overload persists and
                        // the loss curve shows it.
                        rec.counter("sim.failover_errors", 1);
                    }
                }
            }
            // 5. Roll back once nothing is overloaded any more.
            if overloaded.is_empty() && handler.helper_cores() > 0 {
                handler.roll_back_recorded(&mut orch, rec);
            }
        }

        // Degraded mode: parked sub-classes shed their traffic at ingress.
        // It counts as offered *and* lost, so the loss curve shows exactly
        // what degraded mode costs.
        for (c, frac) in handler.shed() {
            let mbps = frac * rates.get(c).copied().unwrap_or(0.0);
            let pps = mbps * 1e6 / (f64::from(cfg.packet_bytes) * 8.0);
            tick_offered += pps;
            tick_lost += pps;
        }
        if handler.is_degraded() {
            degraded_ticks += 1;
        }

        let rate = if tick_offered > 0.0 {
            tick_lost / tick_offered
        } else {
            0.0
        };
        loss.push(tick as f64, rate);
        helper_cores.push(tick as f64, f64::from(handler.helper_cores()));
    }

    rec.gauge(
        "sim.peak_helper_cores",
        f64::from(handler.peak_helper_cores()),
    );
    rec.gauge("sim.planned_cores", f64::from(planned_cores));
    Ok(ReplayOutcome {
        loss,
        helper_cores,
        peak_helper_cores: handler.peak_helper_cores(),
        notifications,
        helpers_spawned,
        planned_cores,
        faults_injected,
        degraded_ticks,
    })
}

/// Applies one scheduled fault, resolving its selector against the
/// population alive right now. Returns 1 when a countable fault (crash or
/// host failure) was injected, 0 otherwise. Handler errors are counted
/// (`sim.failover_errors`), never propagated — surviving malformed events
/// is the point of the fault harness.
pub(crate) fn apply_fault(
    kind: &FaultKind,
    rates: &BTreeMap<ClassId, f64>,
    classes: &apple_core::classes::ClassSet,
    handler: &mut DynamicHandler,
    orch: &mut apple_core::orchestrator::ResourceOrchestrator,
    ops: &mut ControlOps,
    rec: &dyn Recorder,
) -> usize {
    let crash = |dead: InstanceId,
                 handler: &mut DynamicHandler,
                 orch: &mut apple_core::orchestrator::ResourceOrchestrator,
                 ops: &mut ControlOps| {
        if handler
            .handle_instance_crash(dead, rates, classes, orch, ops, rec)
            .is_err()
        {
            rec.counter("sim.failover_errors", 1);
        }
    };
    match kind {
        FaultKind::InstanceCrash { victim } => {
            let alive: Vec<InstanceId> = orch.instances().map(|i| i.id()).collect();
            if alive.is_empty() {
                return 0;
            }
            let dead = alive[(victim % alive.len() as u64) as usize];
            rec.counter("sim.faults_injected", 1);
            crash(dead, handler, orch, ops);
            1
        }
        FaultKind::HostFailure { host } => {
            let up: Vec<usize> = orch
                .hosts()
                .iter()
                .filter(|(_, h)| h.up)
                .map(|(s, _)| *s)
                .collect();
            if up.is_empty() {
                return 0;
            }
            let sw = up[(host % up.len() as u64) as usize];
            rec.counter("sim.faults_injected", 1);
            if let Ok(victims) = orch.fail_host(NodeId(sw)) {
                for dead in victims {
                    crash(dead, handler, orch, ops);
                }
            }
            1
        }
        FaultKind::HostRecovery { host } => {
            let down: Vec<usize> = orch
                .hosts()
                .iter()
                .filter(|(_, h)| !h.up)
                .map(|(s, _)| *s)
                .collect();
            if let Some(&sw) = down.get((host % down.len().max(1) as u64) as usize) {
                let _ = orch.restore_host(NodeId(sw));
            }
            0
        }
    }
}

/// Offered load per instance in Mbps under the handler's current shares.
fn instance_loads(
    handler: &DynamicHandler,
    rates: &BTreeMap<ClassId, f64>,
) -> BTreeMap<InstanceId, f64> {
    let mut loads: BTreeMap<InstanceId, f64> = BTreeMap::new();
    for s in handler.shares() {
        let mbps = s.fraction * rates.get(&s.class).copied().unwrap_or(0.0);
        for &inst in &s.instances {
            *loads.entry(inst).or_insert(0.0) += mbps;
        }
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use apple_core::classes::ClassConfig;
    use apple_topology::zoo;
    use apple_traffic::SeriesConfig;

    fn small_replay_cfg(fast_failover: bool) -> ReplayConfig {
        ReplayConfig {
            apple: AppleConfig {
                classes: ClassConfig {
                    max_classes: 10,
                    ..Default::default()
                },
                ..Default::default()
            },
            fast_failover,
            ..Default::default()
        }
    }

    fn bursty_series(topo: &Topology) -> TmSeries {
        TmSeries::generate(
            topo,
            &SeriesConfig {
                snapshots: 60,
                burst_pairs: 2,
                burst_scale: 8.0,
                ..SeriesConfig::paper(5)
            },
        )
    }

    #[test]
    fn replay_produces_full_series() {
        let topo = zoo::internet2();
        let series = bursty_series(&topo);
        let out = replay(&topo, &series, &small_replay_cfg(true)).unwrap();
        assert_eq!(out.loss.len(), series.len());
        assert_eq!(out.helper_cores.len(), series.len());
        assert!(out.planned_cores > 0);
    }

    #[test]
    fn failover_reduces_loss_under_bursts() {
        let topo = zoo::internet2();
        let series = bursty_series(&topo);
        let with = replay(&topo, &series, &small_replay_cfg(true)).unwrap();
        let without = replay(&topo, &series, &small_replay_cfg(false)).unwrap();
        assert!(
            with.loss.mean() <= without.loss.mean() + 1e-12,
            "failover made things worse: {} vs {}",
            with.loss.mean(),
            without.loss.mean()
        );
        // The no-failover run must actually lose packets during bursts,
        // otherwise the comparison is vacuous.
        assert!(without.loss.max() > 0.0, "bursts never overloaded anything");
    }

    #[test]
    fn loss_rates_are_valid_probabilities() {
        let topo = zoo::internet2();
        let series = bursty_series(&topo);
        let out = replay(&topo, &series, &small_replay_cfg(true)).unwrap();
        for (_, v) in out.loss.samples() {
            assert!((0.0..=1.0).contains(v), "loss {v} out of range");
        }
    }

    #[test]
    fn helpers_roll_back_after_bursts() {
        let topo = zoo::internet2();
        let series = bursty_series(&topo);
        let out = replay(&topo, &series, &small_replay_cfg(true)).unwrap();
        // By the end of the series (bursts long over) no helper cores
        // should remain committed.
        let tail = out.helper_cores.samples().last().unwrap().1;
        assert_eq!(tail, 0.0, "helpers not rolled back");
    }

    #[test]
    fn no_failover_run_spawns_nothing() {
        let topo = zoo::internet2();
        let series = bursty_series(&topo);
        let out = replay(&topo, &series, &small_replay_cfg(false)).unwrap();
        assert_eq!(out.helpers_spawned, 0);
        assert_eq!(out.notifications, 0);
        assert_eq!(out.peak_helper_cores, 0);
    }
}
