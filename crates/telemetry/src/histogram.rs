//! Log-bucketed histogram with quantile estimation.
//!
//! Buckets grow geometrically by a factor of `2^(1/4)` (≈ 19 % per
//! bucket), which keeps any quantile estimate within ~±10 % of the true
//! value — plenty for timing and capacity metrics — while an entire
//! histogram is a handful of sparse `(index, count)` pairs. Negative and
//! non-finite observations are clamped into the zero bucket / dropped
//! respectively, so instrumented code never needs to pre-validate.

use std::collections::BTreeMap;

/// Sub-division of each power of two: 4 buckets per octave.
const BUCKETS_PER_OCTAVE: f64 = 4.0;

/// A sparse log-bucketed histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Sparse bucket index → observation count. Index `i` covers values in
    /// `[2^(i/4), 2^((i+1)/4))`; values `<= 0` land in the dedicated
    /// `i64::MIN` bucket.
    buckets: BTreeMap<i64, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0.0,
            // Identity elements for min/max folding — masked by
            // `min()`/`max()` returning `None` while `count == 0`.
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for a positive finite value.
    fn index_of(value: f64) -> i64 {
        if value <= 0.0 {
            return i64::MIN;
        }
        (value.log2() * BUCKETS_PER_OCTAVE).floor() as i64
    }

    /// Lower bound of bucket `i` (0 for the non-positive bucket).
    pub fn bucket_lower(i: i64) -> f64 {
        if i == i64::MIN {
            0.0
        } else {
            (i as f64 / BUCKETS_PER_OCTAVE).exp2()
        }
    }

    /// Exclusive upper bound of bucket `i`.
    pub fn bucket_upper(i: i64) -> f64 {
        if i == i64::MIN {
            0.0
        } else {
            ((i + 1) as f64 / BUCKETS_PER_OCTAVE).exp2()
        }
    }

    /// Records one observation. Non-finite values are dropped.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        *self.buckets.entry(Self::index_of(value)).or_insert(0) += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) as the geometric
    /// midpoint of the bucket containing the target rank, clamped to the
    /// observed min/max so tails never over-shoot. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&i, &c) in &self.buckets {
            seen += c;
            if seen >= target {
                let est = if i == i64::MIN {
                    // All values here are <= 0; the observed minimum is the
                    // only fidelity the bucket retains.
                    self.min.min(0.0)
                } else {
                    // Geometric midpoint of the bucket.
                    (Self::bucket_lower(i) * Self::bucket_upper(i)).sqrt()
                };
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Sparse `(bucket index, count)` pairs in ascending index order.
    pub fn buckets(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.buckets.iter().map(|(&i, &c)| (i, c))
    }

    /// Rebuilds a histogram from serialised parts (used by the JSON
    /// round-trip). Counts are trusted; the summary fields are taken as
    /// given rather than re-derived because bucketing is lossy.
    pub fn from_parts(buckets: BTreeMap<i64, u64>, sum: f64, min: f64, max: f64) -> Histogram {
        let count = buckets.values().sum();
        Histogram {
            buckets,
            count,
            sum,
            min: if count > 0 { min } else { f64::INFINITY },
            max: if count > 0 { max } else { f64::NEG_INFINITY },
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (i, c) in other.buckets() {
            *self.buckets.entry(i).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_histogram_tracks_min_like_new() {
        // Regression: a derived Default once initialised min to 0.0, so
        // every histogram created via `or_default()` reported min = 0.
        let mut h = Histogram::default();
        h.record(7.5);
        assert_eq!(h.min(), Some(7.5));
        assert_eq!(h.max(), Some(7.5));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.p50(), None);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [0.001, 0.5, 1.0, 1.5, 7.3, 1024.0, 1e9] {
            let i = Histogram::index_of(v);
            assert!(
                Histogram::bucket_lower(i) <= v * (1.0 + 1e-12)
                    && v < Histogram::bucket_upper(i) * (1.0 + 1e-12),
                "{v} outside bucket {i}: [{}, {})",
                Histogram::bucket_lower(i),
                Histogram::bucket_upper(i)
            );
        }
    }

    #[test]
    fn bucket_boundaries_are_exclusive_above() {
        // 1.0 = 2^0 starts bucket 0 exactly.
        assert_eq!(Histogram::index_of(1.0), 0);
        // Just below 1.0 lands in bucket -1.
        assert_eq!(Histogram::index_of(1.0 - 1e-12), -1);
        // 2.0 = 2^1 starts bucket 4 (4 buckets per octave).
        assert_eq!(Histogram::index_of(2.0), 4);
    }

    #[test]
    fn non_positive_values_share_the_zero_bucket() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p50(), Some(-5.0)); // clamped to observed min
        assert_eq!(h.min(), Some(-5.0));
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantiles_on_uniform_1_to_100() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(f64::from(i));
        }
        let p50 = h.p50().unwrap();
        let p95 = h.p95().unwrap();
        let p99 = h.p99().unwrap();
        // Log-bucketed estimates: within one bucket (~19 %) of truth.
        assert!((40.0..=62.0).contains(&p50), "p50 {p50}");
        assert!((80.0..=100.0).contains(&p95), "p95 {p95}");
        assert!((90.0..=100.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn quantiles_on_point_mass() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(42.0);
        }
        // Every quantile is exactly the observed value (clamped to
        // min == max == 42).
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(42.0));
        }
        assert_eq!(h.mean(), Some(42.0));
    }

    #[test]
    fn quantiles_on_bimodal_distribution() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1000.0);
        }
        let p50 = h.p50().unwrap();
        let p95 = h.p95().unwrap();
        assert!(p50 < 2.0, "p50 {p50} should sit in the low mode");
        assert!(p95 > 800.0, "p95 {p95} should sit in the high mode");
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        a.record(1.0);
        let mut b = Histogram::new();
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(100.0));
        assert_eq!(a.sum(), 101.0);
    }
}
