//! A minimal JSON value, writer and parser — just enough for telemetry
//! snapshots to round-trip without external dependencies.
//!
//! Supported: objects, arrays, strings (with `\uXXXX` escapes), finite
//! numbers, booleans and null. Numbers are `f64`; telemetry counters fit
//! losslessly below 2^53, which is far beyond any realistic event count.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

/// Serialises a number the way the writer expects (integers without a
/// trailing `.0`, so counters look like counters).
pub fn write_num(out: &mut String, n: f64) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no Infinity/NaN; clamp to null.
        out.push_str("null");
    }
}

/// Escapes and quotes a string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": "c"}], "d": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Str("c".into())));
        assert!(v.get("d").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "12 34", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t unicode\u{1f600}";
        let mut quoted = String::new();
        write_str(&mut quoted, original);
        assert_eq!(Json::parse(&quoted).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn integers_print_without_decimal_point() {
        let mut s = String::new();
        write_num(&mut s, 42.0);
        assert_eq!(s, "42");
        let mut s = String::new();
        write_num(&mut s, 0.5);
        assert_eq!(s, "0.5");
    }
}
