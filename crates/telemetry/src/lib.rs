//! Telemetry substrate for the APPLE reproduction.
//!
//! Every optimisation PR on the roadmap needs two things this crate
//! provides: *visibility* (where do time and capacity go?) and *evidence*
//! (before/after numbers from the same instrumentation). It is deliberately
//! zero-dependency and cheap enough to leave compiled into hot paths:
//!
//! * [`Recorder`] — the sink trait. Instrumented code takes
//!   `&dyn Recorder`; the default [`NOOP`] recorder reduces every call to a
//!   branch on [`Recorder::enabled`], so un-instrumented runs pay nothing
//!   measurable.
//! * [`MemoryRecorder`] — a thread-safe in-memory implementation keeping
//!   counters, gauges and log-bucketed [`Histogram`]s, snapshottable to
//!   JSON ([`Snapshot::to_json`]) and parseable back
//!   ([`Snapshot::from_json`]) so benches can diff runs.
//! * [`Span`] — hierarchical wall-clock timers
//!   (`rec.span("engine.place").child("solve")`) that record into
//!   `span.<path>` histograms (milliseconds) plus a `span.<path>.calls`
//!   counter.
//! * [`json`] — a dependency-free JSON value, parser and writer, shared by
//!   snapshot serialisation and the committed `BENCH_*.json` schema
//!   checks in `apple-bench`.
//!
//! Metric names are dot-separated lowercase paths (`lp.pivots`,
//! `engine.rounding_gap`, `span.engine.place.solve`). Histogram values are
//! unit-free; by convention durations are recorded in **milliseconds**.
//!
//! # Example
//!
//! ```
//! use apple_telemetry::{MemoryRecorder, Recorder, RecorderExt};
//!
//! let rec = MemoryRecorder::new();
//! rec.counter("lp.pivots", 42);
//! rec.gauge("engine.rounding_gap", 1.5);
//! {
//!     let span = rec.span("engine.place");
//!     let child = span.child("solve");
//!     rec.observe("lp.solve_ms", 0.25);
//!     drop(child);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("lp.pivots"), Some(42));
//! assert_eq!(snap.counter("span.engine.place.calls"), Some(1));
//! let json = snap.to_json();
//! let back = apple_telemetry::Snapshot::from_json(&json).unwrap();
//! assert_eq!(back.counter("lp.pivots"), Some(42));
//! ```

#![warn(missing_docs)]

mod histogram;
pub mod json;
mod recorder;
mod snapshot;
mod span;

pub use histogram::Histogram;
pub use json::{Json, JsonError};
pub use recorder::{MemoryRecorder, NoopRecorder, Recorder, NOOP};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use span::{RecorderExt, Span};
