//! The `Recorder` sink trait and its two implementations.

use crate::histogram::Histogram;
use crate::snapshot::Snapshot;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// A telemetry sink. Instrumented code takes `&dyn Recorder` so the
/// implementation (and its cost) is the caller's choice.
///
/// Implementations must be thread-safe: hot paths record from worker
/// threads without coordination.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &str, delta: u64);

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64);

    /// Records one observation into the named histogram.
    fn observe(&self, name: &str, value: f64);

    /// Whether this recorder keeps anything. Instrumentation uses this to
    /// skip work whose only purpose is producing a value to record (e.g.
    /// reading the clock for a span).
    fn enabled(&self) -> bool {
        true
    }

    /// Convenience: records a duration in milliseconds.
    fn observe_duration(&self, name: &str, d: Duration) {
        self.observe(name, d.as_secs_f64() * 1e3);
    }
}

/// The do-nothing recorder: every method is a no-op and
/// [`Recorder::enabled`] is `false`, so spans skip clock reads entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

/// A shared static no-op recorder for un-instrumented call paths.
pub static NOOP: NoopRecorder = NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter(&self, _name: &str, _delta: u64) {}
    fn gauge(&self, _name: &str, _value: f64) {}
    fn observe(&self, _name: &str, _value: f64) {}
    fn enabled(&self) -> bool {
        false
    }
}

#[derive(Debug, Default)]
struct Store {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe in-memory recorder; snapshot with
/// [`MemoryRecorder::snapshot`].
///
/// A single mutex guards the whole store. The instrumented paths record a
/// handful of metrics per *solve* or per *failover episode* — not per
/// packet — so contention is negligible; replace with sharding only if a
/// profile ever says otherwise.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    store: Mutex<Store>,
}

impl MemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// Copies the current state into an immutable [`Snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    pub fn snapshot(&self) -> Snapshot {
        let store = self.store.lock().expect("telemetry store poisoned");
        Snapshot::build(
            store.counters.clone(),
            store.gauges.clone(),
            store.histograms.clone(),
        )
    }

    /// Clears all recorded data.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    pub fn reset(&self) {
        let mut store = self.store.lock().expect("telemetry store poisoned");
        *store = Store::default();
    }
}

impl Recorder for MemoryRecorder {
    fn counter(&self, name: &str, delta: u64) {
        let mut store = self.store.lock().expect("telemetry store poisoned");
        match store.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                store.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn gauge(&self, name: &str, value: f64) {
        let mut store = self.store.lock().expect("telemetry store poisoned");
        store.gauges.insert(name.to_string(), value);
    }

    fn observe(&self, name: &str, value: f64) {
        let mut store = self.store.lock().expect("telemetry store poisoned");
        store
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let rec = MemoryRecorder::new();
        rec.counter("a", 2);
        rec.counter("a", 3);
        rec.counter("b", 1);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("a"), Some(5));
        assert_eq!(snap.counter("b"), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn gauges_keep_last_value() {
        let rec = MemoryRecorder::new();
        rec.gauge("g", 1.0);
        rec.gauge("g", -2.5);
        assert_eq!(rec.snapshot().gauge("g"), Some(-2.5));
    }

    #[test]
    fn observe_duration_records_milliseconds() {
        let rec = MemoryRecorder::new();
        rec.observe_duration("d", Duration::from_millis(250));
        let snap = rec.snapshot();
        let h = snap.histogram("d").unwrap();
        assert_eq!(h.count, 1);
        assert!((h.sum - 250.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_everything() {
        let rec = MemoryRecorder::new();
        rec.counter("a", 1);
        rec.observe("h", 1.0);
        rec.reset();
        let snap = rec.snapshot();
        assert!(snap.is_empty());
    }

    #[test]
    fn noop_is_disabled_and_silent() {
        NOOP.counter("a", 1);
        NOOP.gauge("g", 1.0);
        NOOP.observe("h", 1.0);
        assert!(!NOOP.enabled());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let rec = Arc::new(MemoryRecorder::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        rec.counter("shared", 1);
                        rec.counter(&format!("thread.{t}"), 1);
                        rec.observe("values", (i % 10) as f64 + 1.0);
                        rec.gauge("last", i as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counter("shared"), Some(8_000));
        for t in 0..8 {
            assert_eq!(snap.counter(&format!("thread.{t}")), Some(1_000));
        }
        assert_eq!(snap.histogram("values").unwrap().count, 8_000);
        assert_eq!(snap.gauge("last"), Some(999.0));
    }
}
