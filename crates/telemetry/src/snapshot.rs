//! Immutable snapshots of a recorder's state, with JSON round-trip.

use crate::histogram::Histogram;
use crate::json::{self, Json, JsonError};
use std::collections::BTreeMap;

/// Serialised view of one [`Histogram`]: summary statistics plus the
/// sparse buckets needed to rebuild it.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Sparse `(bucket index, count)` pairs in ascending index order.
    pub buckets: Vec<(i64, u64)>,
}

impl HistogramSnapshot {
    fn from_histogram(h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min().unwrap_or(0.0),
            max: h.max().unwrap_or(0.0),
            p50: h.p50().unwrap_or(0.0),
            p95: h.p95().unwrap_or(0.0),
            p99: h.p99().unwrap_or(0.0),
            buckets: h.buckets().collect(),
        }
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// An immutable copy of a recorder's counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Builds a snapshot from raw recorder state (crate-internal entry
    /// point used by `MemoryRecorder::snapshot`).
    pub(crate) fn build(
        counters: BTreeMap<String, u64>,
        gauges: BTreeMap<String, f64>,
        histograms: BTreeMap<String, Histogram>,
    ) -> Snapshot {
        Snapshot {
            counters,
            gauges,
            histograms: histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSnapshot::from_histogram(h)))
                .collect(),
        }
    }

    /// Value of a counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Value of a gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's snapshot, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSnapshot)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serialises to a self-contained JSON document:
    ///
    /// ```json
    /// {
    ///   "counters": {"lp.pivots": 42},
    ///   "gauges": {"engine.rounding_gap": 1.5},
    ///   "histograms": {
    ///     "span.engine.place": {
    ///       "count": 1, "sum": 3.2, "min": 3.2, "max": 3.2,
    ///       "p50": 3.36, "p95": 3.36, "p99": 3.36,
    ///       "buckets": [[6, 1]]
    ///     }
    ///   }
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::write_str(&mut out, k);
            out.push_str(": ");
            json::write_num(&mut out, *v as f64);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::write_str(&mut out, k);
            out.push_str(": ");
            json::write_num(&mut out, *v);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            json::write_str(&mut out, k);
            out.push_str(": {");
            let fields: [(&str, f64); 7] = [
                ("count", h.count as f64),
                ("sum", h.sum),
                ("min", h.min),
                ("max", h.max),
                ("p50", h.p50),
                ("p95", h.p95),
                ("p99", h.p99),
            ];
            for (name, value) in fields {
                out.push('"');
                out.push_str(name);
                out.push_str("\": ");
                json::write_num(&mut out, value);
                out.push_str(", ");
            }
            out.push_str("\"buckets\": [");
            for (j, (idx, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                json::write_num(&mut out, *idx as f64);
                out.push_str(", ");
                json::write_num(&mut out, *c as f64);
                out.push(']');
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a document produced by [`Snapshot::to_json`].
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON or a document missing the expected
    /// structure.
    pub fn from_json(text: &str) -> Result<Snapshot, JsonError> {
        let doc = Json::parse(text)?;
        let structural = |msg: &str| JsonError {
            message: msg.to_string(),
            offset: 0,
        };
        let obj = doc
            .as_obj()
            .ok_or_else(|| structural("top level must be an object"))?;

        let mut counters = BTreeMap::new();
        if let Some(section) = obj.get("counters") {
            let map = section
                .as_obj()
                .ok_or_else(|| structural("`counters` must be an object"))?;
            for (k, v) in map {
                let n = v
                    .as_num()
                    .ok_or_else(|| structural("counter values must be numbers"))?;
                counters.insert(k.clone(), n as u64);
            }
        }

        let mut gauges = BTreeMap::new();
        if let Some(section) = obj.get("gauges") {
            let map = section
                .as_obj()
                .ok_or_else(|| structural("`gauges` must be an object"))?;
            for (k, v) in map {
                let n = v
                    .as_num()
                    .ok_or_else(|| structural("gauge values must be numbers"))?;
                gauges.insert(k.clone(), n);
            }
        }

        let mut histograms = BTreeMap::new();
        if let Some(section) = obj.get("histograms") {
            let map = section
                .as_obj()
                .ok_or_else(|| structural("`histograms` must be an object"))?;
            for (k, v) in map {
                let num = |field: &str| -> Result<f64, JsonError> {
                    v.get(field)
                        .and_then(Json::as_num)
                        .ok_or_else(|| structural(&format!("histogram missing `{field}`")))
                };
                let mut buckets = Vec::new();
                let raw = v
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| structural("histogram missing `buckets`"))?;
                for pair in raw {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| structural("bucket entries must be [index, count]"))?;
                    let idx = pair[0]
                        .as_num()
                        .ok_or_else(|| structural("bucket index must be a number"))?;
                    let c = pair[1]
                        .as_num()
                        .ok_or_else(|| structural("bucket count must be a number"))?;
                    // i64::MIN survives the f64 trip exactly (it is a
                    // power of two), so the non-positive bucket is safe.
                    buckets.push((idx as i64, c as u64));
                }
                histograms.insert(
                    k.clone(),
                    HistogramSnapshot {
                        count: num("count")? as u64,
                        sum: num("sum")?,
                        min: num("min")?,
                        max: num("max")?,
                        p50: num("p50")?,
                        p95: num("p95")?,
                        p99: num("p99")?,
                        buckets,
                    },
                );
            }
        }

        Ok(Snapshot {
            counters,
            gauges,
            histograms,
        })
    }

    /// Rebuilds a mergeable [`Histogram`] from a named histogram snapshot
    /// (`None` if the name is unknown).
    pub fn rebuild_histogram(&self, name: &str) -> Option<Histogram> {
        let h = self.histograms.get(name)?;
        Some(Histogram::from_parts(
            h.buckets.iter().copied().collect(),
            h.sum,
            h.min,
            h.max,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemoryRecorder, Recorder};

    fn sample() -> Snapshot {
        let rec = MemoryRecorder::new();
        rec.counter("lp.pivots", 42);
        rec.counter("failover.rebalanced", 3);
        rec.gauge("engine.rounding_gap", 1.5);
        rec.gauge("tcam.occupancy", 128.0);
        for v in [0.5, 1.0, 2.0, 4.0, 8.0] {
            rec.observe("lp.solve_ms", v);
        }
        rec.snapshot()
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let snap = sample();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn json_output_is_parseable_json() {
        let snap = sample();
        Json::parse(&snap.to_json()).expect("snapshot JSON must parse");
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MemoryRecorder::new().snapshot();
        assert!(snap.is_empty());
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rebuild_histogram_matches_original_quantiles() {
        let rec = MemoryRecorder::new();
        for i in 1..=100 {
            rec.observe("h", f64::from(i));
        }
        let snap = rec.snapshot();
        let rebuilt = snap.rebuild_histogram("h").unwrap();
        let orig = snap.histogram("h").unwrap();
        assert_eq!(rebuilt.count(), orig.count);
        assert_eq!(rebuilt.p50(), Some(orig.p50));
        assert_eq!(rebuilt.p99(), Some(orig.p99));
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(Snapshot::from_json("[]").is_err());
        assert!(Snapshot::from_json(r#"{"counters": 5}"#).is_err());
        assert!(
            Snapshot::from_json(r#"{"histograms": {"h": {"count": 1}}}"#).is_err(),
            "histogram without buckets/summary fields must be rejected"
        );
    }

    #[test]
    fn iterators_walk_in_name_order() {
        let snap = sample();
        let names: Vec<&str> = snap.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["failover.rebalanced", "lp.pivots"]);
        assert_eq!(snap.gauges().count(), 2);
        assert_eq!(snap.histograms().count(), 1);
    }
}
