//! Hierarchical wall-clock span timers.
//!
//! A [`Span`] measures the wall time between creation and drop and records
//! it into the `span.<path>` histogram (milliseconds) alongside a
//! `span.<path>.calls` counter. Nested phases use [`Span::child`], which
//! extends the dot-separated path: `engine.place` → `engine.place.solve`.
//!
//! Against a disabled recorder ([`Recorder::enabled`] is `false`) a span
//! never reads the clock or formats a path, so the no-op cost is one
//! branch.

use crate::recorder::Recorder;
use std::time::Instant;

/// A live timing region; records on drop.
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    /// `None` when the recorder is disabled.
    armed: Option<(String, Instant)>,
}

impl<'a> Span<'a> {
    fn new(rec: &'a dyn Recorder, path: String) -> Span<'a> {
        let armed = rec.enabled().then(|| (path, Instant::now()));
        Span { rec, armed }
    }

    /// Opens a nested span whose path extends this span's path.
    pub fn child(&self, name: &str) -> Span<'a> {
        match &self.armed {
            Some((path, _)) => Span::new(self.rec, format!("{path}.{name}")),
            None => Span {
                rec: self.rec,
                armed: None,
            },
        }
    }

    /// The dot-separated path (`None` when the recorder is disabled).
    pub fn path(&self) -> Option<&str> {
        self.armed.as_ref().map(|(p, _)| p.as_str())
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((path, start)) = self.armed.take() {
            let ms = start.elapsed().as_secs_f64() * 1e3;
            self.rec.observe(&format!("span.{path}"), ms);
            self.rec.counter(&format!("span.{path}.calls"), 1);
        }
    }
}

/// Extension adding span construction to every [`Recorder`].
pub trait RecorderExt {
    /// Opens a root span with the given dot-separated path.
    fn span(&self, path: &str) -> Span<'_>;
}

impl<R: Recorder> RecorderExt for R {
    fn span(&self, path: &str) -> Span<'_> {
        Span::new(self, path.to_string())
    }
}

impl RecorderExt for dyn Recorder + '_ {
    fn span(&self, path: &str) -> Span<'_> {
        Span::new(self, path.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{MemoryRecorder, NOOP};

    #[test]
    fn span_records_duration_and_call_count() {
        let rec = MemoryRecorder::new();
        {
            let _s = rec.span("work");
        }
        {
            let _s = rec.span("work");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counter("span.work.calls"), Some(2));
        let h = snap.histogram("span.work").unwrap();
        assert_eq!(h.count, 2);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn nested_spans_extend_the_path() {
        let rec = MemoryRecorder::new();
        {
            let outer = rec.span("engine.place");
            {
                let inner = outer.child("solve");
                assert_eq!(inner.path(), Some("engine.place.solve"));
                let leaf = inner.child("phase1");
                assert_eq!(leaf.path(), Some("engine.place.solve.phase1"));
            }
        }
        let snap = rec.snapshot();
        for name in [
            "span.engine.place",
            "span.engine.place.solve",
            "span.engine.place.solve.phase1",
        ] {
            assert_eq!(snap.counter(&format!("{name}.calls")), Some(1), "{name}");
            assert!(snap.histogram(name).is_some(), "{name}");
        }
    }

    #[test]
    fn children_outlive_nothing_but_record_independently() {
        // An inner span dropped before the outer still records; the outer
        // span's time covers the child's.
        let rec = MemoryRecorder::new();
        {
            let outer = rec.span("outer");
            {
                let _inner = outer.child("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let snap = rec.snapshot();
        let outer = snap.histogram("span.outer").unwrap();
        let inner = snap.histogram("span.outer.inner").unwrap();
        assert!(
            outer.sum >= inner.sum,
            "outer {} < inner {}",
            outer.sum,
            inner.sum
        );
    }

    #[test]
    fn disabled_recorder_skips_all_work() {
        let s = NOOP.span("anything");
        assert_eq!(s.path(), None);
        let c = s.child("below");
        assert_eq!(c.path(), None);
    }
}
