//! Topology analysis: centrality and distance statistics.
//!
//! APPLE's placement gravitates toward switches many paths share; these
//! metrics quantify that structure. The steering baseline also uses
//! centrality to pick middlebox rack locations, and DESIGN.md's workload
//! notes lean on diameter / mean path length per topology.

use crate::graph::{Graph, NodeId};
use crate::spf::dijkstra;

/// Distance statistics of a connected graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceStats {
    /// Longest shortest-path hop count.
    pub diameter_hops: usize,
    /// Mean shortest-path hop count over ordered pairs.
    pub mean_hops: f64,
    /// Number of connected ordered pairs considered.
    pub pairs: usize,
}

impl Graph {
    /// Shortest-path betweenness centrality per switch (unnormalised pair
    /// counts; endpoints excluded). Uses the deterministic single shortest
    /// path per pair — matching how the rest of the framework routes.
    pub fn betweenness(&self) -> Vec<f64> {
        let mut score = vec![0.0; self.node_count()];
        for s in self.node_ids() {
            let Ok(tree) = dijkstra(self, s) else {
                continue;
            };
            for d in self.node_ids() {
                if s == d {
                    continue;
                }
                if let Some(path) = tree.path_to(d) {
                    for n in &path.nodes()[1..path.len().saturating_sub(1)] {
                        score[n.0] += 1.0;
                    }
                }
            }
        }
        score
    }

    /// The `k` most-central switches (descending betweenness, ties by id).
    pub fn central_nodes(&self, k: usize) -> Vec<NodeId> {
        let score = self.betweenness();
        let mut nodes: Vec<NodeId> = self.node_ids().collect();
        nodes.sort_by(|a, b| {
            score[b.0]
                .partial_cmp(&score[a.0])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        nodes.truncate(k);
        nodes
    }

    /// Hop-count distance statistics over all connected ordered pairs.
    /// Returns `None` for graphs with fewer than two nodes.
    pub fn distance_stats(&self) -> Option<DistanceStats> {
        if self.node_count() < 2 {
            return None;
        }
        let mut diameter = 0usize;
        let mut total = 0usize;
        let mut pairs = 0usize;
        for s in self.node_ids() {
            let tree = dijkstra(self, s).ok()?;
            for d in self.node_ids() {
                if s == d {
                    continue;
                }
                if let Some(p) = tree.path_to(d) {
                    diameter = diameter.max(p.hops());
                    total += p.hops();
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            return None;
        }
        Some(DistanceStats {
            diameter_hops: diameter,
            mean_hops: total as f64 / pairs as f64,
            pairs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn line_centrality_peaks_in_middle() {
        let t = zoo::line(5);
        let b = t.graph.betweenness();
        // Middle node (index 2) lies on the most paths.
        let max_idx = (0..5)
            .max_by(|&a, &bx| b[a].partial_cmp(&b[bx]).unwrap())
            .unwrap();
        assert_eq!(max_idx, 2);
        // Endpoints relay nothing.
        assert_eq!(b[0], 0.0);
        assert_eq!(b[4], 0.0);
    }

    #[test]
    fn star_hub_is_most_central() {
        let t = zoo::star(6);
        let central = t.graph.central_nodes(1);
        assert_eq!(central, vec![NodeId(0)]);
        // Hub relays every leaf pair: 6*5 ordered pairs.
        assert_eq!(t.graph.betweenness()[0], 30.0);
    }

    #[test]
    fn univ1_cores_most_central() {
        let t = zoo::univ1();
        let central = t.graph.central_nodes(2);
        let names: Vec<&str> = central
            .iter()
            .map(|&n| t.graph.node(n).unwrap().name.as_str())
            .collect();
        assert!(names.contains(&"core0") || names.contains(&"core1"));
    }

    #[test]
    fn distance_stats_line() {
        let t = zoo::line(4);
        let s = t.graph.distance_stats().unwrap();
        assert_eq!(s.diameter_hops, 3);
        assert_eq!(s.pairs, 12);
        // Mean hops of a 4-line: (1*6 + 2*4 + 3*2) / 12 = 20/12.
        assert!((s.mean_hops - 20.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_graphs_yield_none() {
        let t = zoo::line(1);
        assert!(t.graph.distance_stats().is_none());
        let mut g = Graph::new();
        g.add_node("a", 0);
        g.add_node("b", 0);
        assert!(g.distance_stats().is_none()); // disconnected, zero pairs
    }

    #[test]
    fn evaluation_topologies_have_sane_diameters() {
        assert_eq!(
            zoo::internet2()
                .graph
                .distance_stats()
                .unwrap()
                .diameter_hops,
            5
        );
        assert!(zoo::geant().graph.distance_stats().unwrap().diameter_hops <= 6);
        assert_eq!(
            zoo::univ1().graph.distance_stats().unwrap().diameter_hops,
            2
        );
    }
}
