//! Core graph model: switches (nodes) and links with capacities.
//!
//! The graph is stored as an undirected multigraph with an adjacency list.
//! Every undirected link is addressable in both directions; helper methods
//! expose a directed view where each undirected link counts twice (this is
//! how the GEANT data set arrives at "74 links" for 37 physical adjacencies).

use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a switch in the topology.
///
/// Node ids are dense indices in `0..node_count()`. They are assigned in
/// insertion order by [`Graph::add_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// Identifier of an undirected link.
///
/// Link ids are dense indices in `0..undirected_link_count()`, assigned in
/// insertion order by [`Graph::add_link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Errors returned by graph mutation and query operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A link id referenced a link that does not exist.
    UnknownLink(LinkId),
    /// An attempt to add a self-loop, which the model forbids.
    SelfLoop(NodeId),
    /// A duplicate link between the same pair of nodes.
    DuplicateLink(NodeId, NodeId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::UnknownLink(l) => write!(f, "unknown link {l}"),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {n} is not allowed"),
            GraphError::DuplicateLink(a, b) => {
                write!(f, "duplicate link between {a} and {b}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A node (SDN switch) record.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Human-readable name, e.g. a PoP city for backbone topologies.
    pub name: String,
    /// Tier label for structured topologies (0 = core, 1 = aggregation /
    /// edge, ...). Backbone topologies use tier 0 everywhere.
    pub tier: u8,
}

/// An undirected link record.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity in Mbps (informational; APPLE's optimization constrains VNF
    /// capacity, not link bandwidth, but the traffic generator scales rates
    /// relative to link capacity).
    pub capacity_mbps: f64,
    /// Routing weight (IGP metric). Shortest paths minimise the sum of
    /// weights; ties are broken deterministically by node id.
    pub weight: f64,
}

/// An undirected multigraph of switches and links.
///
/// # Example
///
/// ```
/// use apple_topology::{Graph, NodeId};
///
/// let mut g = Graph::new();
/// let a = g.add_node("a", 0);
/// let b = g.add_node("b", 0);
/// let l = g.add_link(a, b, 10_000.0, 1.0).unwrap();
/// assert_eq!(g.link(l).unwrap().capacity_mbps, 10_000.0);
/// assert_eq!(g.neighbors(a).collect::<Vec<_>>(), vec![b]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency[node] = sorted map neighbor -> link id.
    adjacency: Vec<BTreeMap<NodeId, LinkId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a switch and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, tier: u8) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            tier,
        });
        self.adjacency.push(BTreeMap::new());
        id
    }

    /// Adds an undirected link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if either endpoint does not exist,
    /// [`GraphError::SelfLoop`] if `a == b`, and
    /// [`GraphError::DuplicateLink`] if the pair is already connected.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_mbps: f64,
        weight: f64,
    ) -> Result<LinkId, GraphError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if self.adjacency[a.0].contains_key(&b) {
            return Err(GraphError::DuplicateLink(a, b));
        }
        let id = LinkId(self.links.len());
        self.links.push(Link {
            a,
            b,
            capacity_mbps,
            weight,
        });
        self.adjacency[a.0].insert(b, id);
        self.adjacency[b.0].insert(a, id);
        Ok(id)
    }

    fn check_node(&self, n: NodeId) -> Result<(), GraphError> {
        if n.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownNode(n))
        }
    }

    /// Number of switches.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected links.
    pub fn undirected_link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of directed links (twice the undirected count). Data sets such
    /// as TOTEM/GEANT report this figure.
    pub fn directed_link_count(&self) -> usize {
        self.links.len() * 2
    }

    /// Returns the node record.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] for out-of-range ids.
    pub fn node(&self, id: NodeId) -> Result<&Node, GraphError> {
        self.nodes.get(id.0).ok_or(GraphError::UnknownNode(id))
    }

    /// Returns the link record.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownLink`] for out-of-range ids.
    pub fn link(&self, id: LinkId) -> Result<&Link, GraphError> {
        self.links.get(id.0).ok_or(GraphError::UnknownLink(id))
    }

    /// Returns the link connecting `a` and `b`, if one exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency.get(a.0)?.get(&b).copied()
    }

    /// Iterates over all node ids in ascending order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates over all link ids in ascending order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId)
    }

    /// Iterates over the neighbors of `n` in ascending node-id order.
    ///
    /// Unknown nodes yield an empty iterator.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency
            .get(n.0)
            .into_iter()
            .flat_map(|m| m.keys().copied())
    }

    /// Iterates over `(neighbor, link)` pairs of `n` in ascending node-id
    /// order.
    pub fn incident(&self, n: NodeId) -> impl Iterator<Item = (NodeId, LinkId)> + '_ {
        self.adjacency
            .get(n.0)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (*k, *v)))
    }

    /// Degree of a node (0 for unknown nodes).
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency.get(n.0).map_or(0, BTreeMap::len)
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Checks whether the graph is connected (empty graphs count as
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for nb in self.neighbors(n) {
                if !seen[nb.0] {
                    seen[nb.0] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        count == self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node("a", 0);
        let b = g.add_node("b", 0);
        let c = g.add_node("c", 0);
        g.add_link(a, b, 100.0, 1.0).unwrap();
        g.add_link(b, c, 100.0, 1.0).unwrap();
        g.add_link(a, c, 100.0, 1.0).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn add_and_count() {
        let (g, ..) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.undirected_link_count(), 3);
        assert_eq!(g.directed_link_count(), 6);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new();
        let a = g.add_node("a", 0);
        assert_eq!(g.add_link(a, a, 1.0, 1.0), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn duplicate_link_rejected() {
        let mut g = Graph::new();
        let a = g.add_node("a", 0);
        let b = g.add_node("b", 0);
        g.add_link(a, b, 1.0, 1.0).unwrap();
        assert_eq!(
            g.add_link(b, a, 1.0, 1.0),
            Err(GraphError::DuplicateLink(b, a))
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = Graph::new();
        let a = g.add_node("a", 0);
        let ghost = NodeId(9);
        assert_eq!(
            g.add_link(a, ghost, 1.0, 1.0),
            Err(GraphError::UnknownNode(ghost))
        );
        assert!(g.node(ghost).is_err());
    }

    #[test]
    fn neighbors_sorted() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.neighbors(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.degree(b), 2);
    }

    #[test]
    fn link_between_symmetric() {
        let (g, a, b, _) = triangle();
        assert_eq!(g.link_between(a, b), g.link_between(b, a));
        assert!(g.link_between(a, NodeId(99)).is_none());
    }

    #[test]
    fn node_by_name_found() {
        let (g, _, b, _) = triangle();
        assert_eq!(g.node_by_name("b"), Some(b));
        assert_eq!(g.node_by_name("zzz"), None);
    }

    #[test]
    fn connectivity() {
        let (g, ..) = triangle();
        assert!(g.is_connected());
        let mut g2 = Graph::new();
        g2.add_node("x", 0);
        g2.add_node("y", 0);
        assert!(!g2.is_connected());
        assert!(Graph::new().is_connected());
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId(3).to_string(), "s3");
        assert_eq!(LinkId(4).to_string(), "l4");
        let err = GraphError::SelfLoop(NodeId(1));
        assert!(err.to_string().contains("self-loop"));
    }
}
