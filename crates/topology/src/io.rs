//! Topology serialisation: a plain edge-list text format (round-trippable)
//! and Graphviz DOT export for visual inspection.
//!
//! The edge-list format, one record per line:
//!
//! ```text
//! # comment
//! node <name> <tier>
//! link <name-a> <name-b> <capacity-mbps> <weight>
//! ```

use crate::graph::{Graph, GraphError};
use std::fmt;
use std::fmt::Write as _;

/// Errors parsing the edge-list format.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Line did not match any record type.
    BadRecord { line: usize, content: String },
    /// A numeric field failed to parse.
    BadNumber { line: usize, field: &'static str },
    /// A link referenced an undeclared node.
    UnknownNode { line: usize, name: String },
    /// The resulting graph rejected a link (self-loop / duplicate).
    Graph(GraphError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadRecord { line, content } => {
                write!(f, "line {line}: unrecognised record `{content}`")
            }
            ParseError::BadNumber { line, field } => {
                write!(f, "line {line}: invalid number in field `{field}`")
            }
            ParseError::UnknownNode { line, name } => {
                write!(f, "line {line}: link references undeclared node `{name}`")
            }
            ParseError::Graph(e) => write!(f, "graph rejected record: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        ParseError::Graph(e)
    }
}

impl Graph {
    /// Serialises the graph to the edge-list format.
    pub fn to_edge_list(&self) -> String {
        let mut out = String::new();
        out.push_str("# apple-topology edge list\n");
        for id in self.node_ids() {
            let n = self.node(id).expect("iterating valid ids");
            let _ = writeln!(out, "node {} {}", n.name, n.tier);
        }
        for lid in self.link_ids() {
            let l = self.link(lid).expect("iterating valid ids");
            let a = &self.node(l.a).expect("valid endpoint").name;
            let b = &self.node(l.b).expect("valid endpoint").name;
            let _ = writeln!(out, "link {a} {b} {} {}", l.capacity_mbps, l.weight);
        }
        out
    }

    /// Parses a graph from the edge-list format.
    ///
    /// # Errors
    ///
    /// Any [`ParseError`] variant; parsing is strict (unknown records are
    /// rejected rather than skipped).
    pub fn from_edge_list(text: &str) -> Result<Graph, ParseError> {
        let mut g = Graph::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut fields = trimmed.split_whitespace();
            match fields.next() {
                Some("node") => {
                    let name = fields.next().ok_or_else(|| ParseError::BadRecord {
                        line,
                        content: trimmed.to_string(),
                    })?;
                    let tier: u8 = fields.next().and_then(|t| t.parse().ok()).ok_or(
                        ParseError::BadNumber {
                            line,
                            field: "tier",
                        },
                    )?;
                    g.add_node(name, tier);
                }
                Some("link") => {
                    let a_name = fields.next().ok_or_else(|| ParseError::BadRecord {
                        line,
                        content: trimmed.to_string(),
                    })?;
                    let b_name = fields.next().ok_or_else(|| ParseError::BadRecord {
                        line,
                        content: trimmed.to_string(),
                    })?;
                    let cap: f64 = fields.next().and_then(|t| t.parse().ok()).ok_or(
                        ParseError::BadNumber {
                            line,
                            field: "capacity",
                        },
                    )?;
                    let weight: f64 = fields.next().and_then(|t| t.parse().ok()).ok_or(
                        ParseError::BadNumber {
                            line,
                            field: "weight",
                        },
                    )?;
                    let a = g
                        .node_by_name(a_name)
                        .ok_or_else(|| ParseError::UnknownNode {
                            line,
                            name: a_name.to_string(),
                        })?;
                    let b = g
                        .node_by_name(b_name)
                        .ok_or_else(|| ParseError::UnknownNode {
                            line,
                            name: b_name.to_string(),
                        })?;
                    g.add_link(a, b, cap, weight)?;
                }
                _ => {
                    return Err(ParseError::BadRecord {
                        line,
                        content: trimmed.to_string(),
                    })
                }
            }
        }
        Ok(g)
    }

    /// Graphviz DOT export (undirected), tiers rendered as shapes.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph topology {\n");
        for id in self.node_ids() {
            let n = self.node(id).expect("iterating valid ids");
            let shape = if n.tier == 0 { "box" } else { "ellipse" };
            let _ = writeln!(out, "  \"{}\" [shape={shape}];", n.name);
        }
        for lid in self.link_ids() {
            let l = self.link(lid).expect("iterating valid ids");
            let a = &self.node(l.a).expect("valid endpoint").name;
            let b = &self.node(l.b).expect("valid endpoint").name;
            let _ = writeln!(out, "  \"{a}\" -- \"{b}\" [label=\"{}\"];", l.weight);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn round_trip_internet2() {
        let original = zoo::internet2().graph;
        let text = original.to_edge_list();
        let parsed = Graph::from_edge_list(&text).unwrap();
        assert_eq!(parsed.node_count(), original.node_count());
        assert_eq!(
            parsed.undirected_link_count(),
            original.undirected_link_count()
        );
        for id in original.node_ids() {
            assert_eq!(
                parsed.node(id).unwrap().name,
                original.node(id).unwrap().name
            );
        }
        for lid in original.link_ids() {
            let a = original.link(lid).unwrap();
            let b = parsed.link(lid).unwrap();
            assert_eq!((a.a, a.b, a.weight), (b.a, b.b, b.weight));
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# hello\n\nnode a 0\nnode b 1\n link a b 100 1.5 \n";
        let g = Graph::from_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.link(crate::LinkId(0)).unwrap().weight, 1.5);
    }

    #[test]
    fn bad_record_rejected() {
        let err = Graph::from_edge_list("frobnicate x y").unwrap_err();
        assert!(matches!(err, ParseError::BadRecord { line: 1, .. }));
        assert!(err.to_string().contains("unrecognised"));
    }

    #[test]
    fn bad_number_rejected() {
        let err = Graph::from_edge_list("node a zero").unwrap_err();
        assert!(matches!(err, ParseError::BadNumber { field: "tier", .. }));
    }

    #[test]
    fn unknown_node_rejected() {
        let err = Graph::from_edge_list("node a 0\nlink a ghost 1 1").unwrap_err();
        assert!(matches!(err, ParseError::UnknownNode { line: 2, .. }));
    }

    #[test]
    fn duplicate_link_propagates_graph_error() {
        let err =
            Graph::from_edge_list("node a 0\nnode b 0\nlink a b 1 1\nlink b a 1 1").unwrap_err();
        assert!(matches!(
            err,
            ParseError::Graph(GraphError::DuplicateLink(..))
        ));
    }

    #[test]
    fn dot_export_contains_all_elements() {
        let g = zoo::univ1().graph;
        let dot = g.to_dot();
        assert!(dot.starts_with("graph topology {"));
        assert!(dot.contains("\"core0\" [shape=box]"));
        assert!(dot.contains("\"edge0\" [shape=ellipse]"));
        assert!(dot.matches("--").count() == g.undirected_link_count());
    }
}
