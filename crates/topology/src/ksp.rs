//! k-shortest paths (Yen's algorithm) and ECMP enumeration.
//!
//! Data-center topologies such as UNIV1 route over multiple equal-cost
//! paths; Fig. 10 of the paper attributes UNIV1's larger TCAM savings to
//! exactly this multipath behaviour (classification rules would otherwise be
//! replicated along every equal-cost path). This module supplies the ECMP
//! path sets the traffic layer spreads classes across.

use crate::graph::{Graph, NodeId};
use crate::path::Path;
use crate::spf::dijkstra;
use std::collections::BTreeSet;

/// Enumerates up to `k` loop-free shortest paths from `from` to `to` in
/// ascending cost order (Yen's algorithm). Deterministic: ties are resolved
/// by the lexicographic order of the node sequence.
///
/// Returns an empty vector when the endpoints are disconnected or `k == 0`.
pub fn k_shortest_paths(graph: &Graph, from: NodeId, to: NodeId, k: usize) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let Some(first) = graph.shortest_path(from, to) else {
        return Vec::new();
    };
    let mut found = vec![first];
    // Candidate set ordered by (cost, node sequence).
    let mut candidates: BTreeSet<(OrderedCost, Vec<NodeId>)> = BTreeSet::new();

    while found.len() < k {
        let last = found.last().expect("found is non-empty").clone();
        for spur_idx in 0..last.len() - 1 {
            let spur_node = last.nodes()[spur_idx];
            let root: Vec<NodeId> = last.nodes()[..=spur_idx].to_vec();

            // Build a filtered graph: remove links used by previous paths
            // sharing this root, and remove root nodes except the spur.
            let mut banned_links: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
            for p in &found {
                if p.len() > spur_idx + 1 && p.nodes()[..=spur_idx] == root[..] {
                    let a = p.nodes()[spur_idx];
                    let b = p.nodes()[spur_idx + 1];
                    banned_links.insert((a.min(b), a.max(b)));
                }
            }
            let banned_nodes: BTreeSet<NodeId> = root[..spur_idx].iter().copied().collect();

            if let Some(spur_path) =
                filtered_shortest_path(graph, spur_node, to, &banned_nodes, &banned_links)
            {
                let mut total = root.clone();
                total.extend_from_slice(&spur_path.nodes()[1..]);
                if let Ok(p) = Path::new_in(graph, total) {
                    if !found.contains(&p) {
                        let cost = path_cost(graph, &p);
                        candidates.insert((OrderedCost(cost), p.nodes().to_vec()));
                    }
                }
            }
        }
        let Some((_, nodes)) = candidates.iter().next().cloned() else {
            break;
        };
        candidates.remove(&(OrderedCost(path_cost_of(graph, &nodes)), nodes.clone()));
        found.push(Path::new(nodes).expect("candidates are loop-free"));
    }
    found
}

/// Enumerates all equal-cost shortest paths between two switches, up to
/// `limit` paths, in deterministic order. This is the ECMP set used for
/// data-center routing.
pub fn ecmp_paths(graph: &Graph, from: NodeId, to: NodeId, limit: usize) -> Vec<Path> {
    let Some(best) = dijkstra(graph, from).ok().and_then(|t| t.distance(to)) else {
        return Vec::new();
    };
    let mut all = k_shortest_paths(graph, from, to, limit.max(1));
    all.retain(|p| (path_cost(graph, p) - best).abs() < 1e-9);
    all
}

fn path_cost(graph: &Graph, p: &Path) -> f64 {
    path_cost_of(graph, p.nodes())
}

fn path_cost_of(graph: &Graph, nodes: &[NodeId]) -> f64 {
    nodes
        .windows(2)
        .map(|w| {
            graph
                .link_between(w[0], w[1])
                .and_then(|l| graph.link(l).ok())
                .map_or(f64::INFINITY, |l| l.weight)
        })
        .sum()
}

fn filtered_shortest_path(
    graph: &Graph,
    from: NodeId,
    to: NodeId,
    banned_nodes: &BTreeSet<NodeId>,
    banned_links: &BTreeSet<(NodeId, NodeId)>,
) -> Option<Path> {
    // Small-topology friendly: clone the graph minus banned elements by
    // rebuilding with infinite-weight suppression via omission.
    let mut g = Graph::new();
    for id in graph.node_ids() {
        let n = graph.node(id).expect("iterating valid ids");
        g.add_node(n.name.clone(), n.tier);
    }
    for lid in graph.link_ids() {
        let l = graph.link(lid).expect("iterating valid ids");
        let key = (l.a.min(l.b), l.a.max(l.b));
        if banned_links.contains(&key) || banned_nodes.contains(&l.a) || banned_nodes.contains(&l.b)
        {
            continue;
        }
        g.add_link(l.a, l.b, l.capacity_mbps, l.weight)
            .expect("rebuild preserves validity");
    }
    g.shortest_path(from, to)
}

/// Total-ordered f64 wrapper for use in BTreeSet keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedCost(f64);

impl Eq for OrderedCost {}

impl PartialOrd for OrderedCost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedCost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a - b - d
    ///  \     /
    ///   - c -       plus a direct long a-d link.
    fn multi() -> (Graph, [NodeId; 4]) {
        let mut g = Graph::new();
        let a = g.add_node("a", 0);
        let b = g.add_node("b", 0);
        let c = g.add_node("c", 0);
        let d = g.add_node("d", 0);
        g.add_link(a, b, 1.0, 1.0).unwrap();
        g.add_link(b, d, 1.0, 1.0).unwrap();
        g.add_link(a, c, 1.0, 1.0).unwrap();
        g.add_link(c, d, 1.0, 1.0).unwrap();
        g.add_link(a, d, 1.0, 5.0).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn finds_three_paths_in_cost_order() {
        let (g, [a, .., d]) = multi();
        let ps = k_shortest_paths(&g, a, d, 5);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].hops(), 2);
        assert_eq!(ps[1].hops(), 2);
        assert_eq!(ps[2].nodes().len(), 2); // direct expensive link last
    }

    #[test]
    fn k_limits_result() {
        let (g, [a, .., d]) = multi();
        assert_eq!(k_shortest_paths(&g, a, d, 1).len(), 1);
        assert_eq!(k_shortest_paths(&g, a, d, 0).len(), 0);
    }

    #[test]
    fn ecmp_returns_only_equal_cost() {
        let (g, [a, .., d]) = multi();
        let ps = ecmp_paths(&g, a, d, 8);
        assert_eq!(ps.len(), 2);
        assert!(ps.iter().all(|p| p.hops() == 2));
    }

    #[test]
    fn disconnected_yields_empty() {
        let mut g = Graph::new();
        let a = g.add_node("a", 0);
        let b = g.add_node("b", 0);
        assert!(k_shortest_paths(&g, a, b, 3).is_empty());
        assert!(ecmp_paths(&g, a, b, 3).is_empty());
    }

    #[test]
    fn paths_are_loop_free_and_valid() {
        let (g, [a, .., d]) = multi();
        for p in k_shortest_paths(&g, a, d, 10) {
            assert!(Path::new_in(&g, p.nodes().to_vec()).is_ok());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (g, [a, .., d]) = multi();
        let p1 = k_shortest_paths(&g, a, d, 5);
        let p2 = k_shortest_paths(&g, a, d, 5);
        assert_eq!(p1, p2);
    }
}
