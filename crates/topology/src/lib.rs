//! Network topology substrate for the APPLE NFV orchestration reproduction.
//!
//! APPLE (Li & Qian, ICDCS 2016) is evaluated on four topologies:
//!
//! * **Internet2** — a 12-node / 15-link research backbone (campus network
//!   representative),
//! * **GEANT** — the 23-node / 74-directed-link European research network
//!   (enterprise representative, from the TOTEM data set),
//! * **UNIV1** — a 23-node / 43-link two-tier campus data center,
//! * **AS-3679** — a 79-node / 147-link Rocketfuel router-level ISP map
//!   (used only to show solver scalability; synthesised here).
//!
//! This crate provides the graph model, shortest-path machinery (Dijkstra,
//! Yen's k-shortest paths, ECMP enumeration) and deterministic builders for
//! all four topologies, plus generic generators used by tests and ablations.
//!
//! # Example
//!
//! ```
//! use apple_topology::{zoo, NodeId};
//!
//! let topo = zoo::internet2();
//! assert_eq!(topo.graph.node_count(), 12);
//! assert_eq!(topo.graph.undirected_link_count(), 15);
//! let path = topo
//!     .graph
//!     .shortest_path(NodeId(0), NodeId(7))
//!     .expect("backbone is connected");
//! assert_eq!(path.first(), NodeId(0));
//! assert_eq!(path.last(), NodeId(7));
//! ```

pub mod analysis;
pub mod graph;
pub mod io;
pub mod ksp;
pub mod path;
pub mod spf;
pub mod zoo;

pub use graph::{Graph, GraphError, LinkId, NodeId};
pub use path::Path;
pub use zoo::{Topology, TopologyKind};
