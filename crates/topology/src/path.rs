//! Forwarding paths: the `P_h = <p^i_h>` sequences of the paper.
//!
//! A [`Path`] is a loop-free sequence of switches. APPLE's interference
//! freedom property means paths are *inputs* computed by other control-plane
//! applications (routing / traffic engineering) and are never modified by
//! the orchestrator; this module therefore only offers construction and
//! inspection, no rewriting.

use crate::graph::{Graph, NodeId};
use std::fmt;

/// Errors produced when validating a path against a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// Paths must contain at least one switch.
    Empty,
    /// The same switch appeared twice (forwarding loop).
    Loop(NodeId),
    /// Two consecutive switches are not adjacent in the graph.
    NotAdjacent(NodeId, NodeId),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "path must contain at least one switch"),
            PathError::Loop(n) => write!(f, "switch {n} appears twice on the path"),
            PathError::NotAdjacent(a, b) => {
                write!(f, "consecutive switches {a} and {b} are not adjacent")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A loop-free forwarding path through the network.
///
/// # Example
///
/// ```
/// use apple_topology::{NodeId, Path};
///
/// let p = Path::new(vec![NodeId(0), NodeId(3), NodeId(5)]).unwrap();
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.index_of(NodeId(3)), Some(1));
/// assert_eq!(p.hops(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// Builds a path from a switch sequence, checking it is non-empty and
    /// loop-free.
    ///
    /// # Errors
    ///
    /// Returns [`PathError::Empty`] for an empty sequence and
    /// [`PathError::Loop`] when a switch repeats.
    pub fn new(nodes: Vec<NodeId>) -> Result<Self, PathError> {
        if nodes.is_empty() {
            return Err(PathError::Empty);
        }
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(PathError::Loop(w[0]));
            }
        }
        Ok(Path { nodes })
    }

    /// Builds a path and additionally verifies adjacency against `graph`.
    ///
    /// # Errors
    ///
    /// All [`PathError`] variants are possible.
    pub fn new_in(graph: &Graph, nodes: Vec<NodeId>) -> Result<Self, PathError> {
        let p = Self::new(nodes)?;
        for w in p.nodes.windows(2) {
            if graph.link_between(w[0], w[1]).is_none() {
                return Err(PathError::NotAdjacent(w[0], w[1]));
            }
        }
        Ok(p)
    }

    /// The switches in traversal order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of switches on the path — the paper's `|P_h|` / `P(h)`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A path is never empty, but the conventional method is provided.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of links traversed (`len() - 1`).
    pub fn hops(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Ingress switch.
    pub fn first(&self) -> NodeId {
        self.nodes[0]
    }

    /// Egress switch.
    pub fn last(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Position of `v` on the path — the paper's `i(P, h, v)`.
    pub fn index_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == v)
    }

    /// Whether switch `v` lies on the path.
    pub fn contains(&self, v: NodeId) -> bool {
        self.index_of(v).is_some()
    }

    /// Iterates over the switches.
    pub fn iter(&self) -> std::slice::Iter<'_, NodeId> {
        self.nodes.iter()
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, "->")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Path {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn rejects_empty() {
        assert_eq!(Path::new(vec![]), Err(PathError::Empty));
    }

    #[test]
    fn rejects_loop() {
        let err = Path::new(vec![NodeId(1), NodeId(2), NodeId(1)]);
        assert_eq!(err, Err(PathError::Loop(NodeId(1))));
    }

    #[test]
    fn single_node_path_ok() {
        let p = Path::new(vec![NodeId(4)]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.hops(), 0);
        assert_eq!(p.first(), p.last());
    }

    #[test]
    fn adjacency_checked() {
        let mut g = Graph::new();
        let a = g.add_node("a", 0);
        let b = g.add_node("b", 0);
        let c = g.add_node("c", 0);
        g.add_link(a, b, 1.0, 1.0).unwrap();
        assert!(Path::new_in(&g, vec![a, b]).is_ok());
        assert_eq!(
            Path::new_in(&g, vec![a, c]),
            Err(PathError::NotAdjacent(a, c))
        );
    }

    #[test]
    fn index_and_contains() {
        let p = Path::new(vec![NodeId(5), NodeId(2), NodeId(9)]).unwrap();
        assert_eq!(p.index_of(NodeId(9)), Some(2));
        assert!(p.contains(NodeId(2)));
        assert!(!p.contains(NodeId(0)));
    }

    #[test]
    fn display_format() {
        let p = Path::new(vec![NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(p.to_string(), "s1->s2");
    }

    #[test]
    fn error_display() {
        assert!(PathError::Empty.to_string().contains("at least one"));
        assert!(PathError::Loop(NodeId(3)).to_string().contains("twice"));
    }
}
