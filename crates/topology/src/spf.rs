//! Shortest-path machinery (Dijkstra) with deterministic tie-breaking.
//!
//! Interference freedom in APPLE means the orchestrator consumes paths that
//! routing computed; in this reproduction routing is weighted shortest-path
//! with ties broken by lexicographically smallest predecessor so that every
//! run of an experiment sees identical paths.

use crate::graph::{Graph, GraphError, NodeId};
use crate::path::Path;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path run.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<f64>,
    prev: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// Distance from the source to `to`, or `None` if unreachable.
    pub fn distance(&self, to: NodeId) -> Option<f64> {
        let d = *self.dist.get(to.0)?;
        if d.is_finite() {
            Some(d)
        } else {
            None
        }
    }

    /// The source this tree was computed from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Reconstructs the path from the source to `to`.
    pub fn path_to(&self, to: NodeId) -> Option<Path> {
        if to.0 >= self.dist.len() || !self.dist[to.0].is_finite() {
            return None;
        }
        let mut rev = vec![to];
        let mut cur = to;
        while let Some(p) = self.prev[cur.0] {
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        debug_assert_eq!(rev[0], self.source);
        Some(Path::new(rev).expect("dijkstra paths are loop-free"))
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (dist, node id); node id tiebreak gives determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Dijkstra from `source` over link weights.
///
/// # Errors
///
/// Returns [`GraphError::UnknownNode`] if `source` is out of range.
pub fn dijkstra(graph: &Graph, source: NodeId) -> Result<ShortestPathTree, GraphError> {
    graph.node(source)?;
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut done = vec![false; n];
    dist[source.0] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.0] {
            continue;
        }
        done[u.0] = true;
        for (v, lid) in graph.incident(u) {
            let w = graph.link(lid).expect("incident links exist").weight;
            let nd = d + w;
            let better = nd < dist[v.0] || (nd == dist[v.0] && prev[v.0].is_some_and(|p| u < p));
            if better {
                dist[v.0] = nd;
                prev[v.0] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    Ok(ShortestPathTree { source, dist, prev })
}

impl Graph {
    /// Convenience wrapper: deterministic weighted shortest path between two
    /// switches, or `None` when disconnected.
    ///
    /// # Example
    ///
    /// ```
    /// use apple_topology::{Graph, NodeId};
    /// let mut g = Graph::new();
    /// let a = g.add_node("a", 0);
    /// let b = g.add_node("b", 0);
    /// let c = g.add_node("c", 0);
    /// g.add_link(a, b, 1.0, 1.0)?;
    /// g.add_link(b, c, 1.0, 1.0)?;
    /// let p = g.shortest_path(a, c).unwrap();
    /// assert_eq!(p.nodes(), &[a, b, c]);
    /// # Ok::<(), apple_topology::GraphError>(())
    /// ```
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Path> {
        dijkstra(self, from).ok()?.path_to(to)
    }

    /// All-pairs shortest paths as a dense matrix of trees (one Dijkstra run
    /// per source). Suitable for the topology sizes in the paper (≤ 79
    /// switches).
    pub fn all_pairs(&self) -> Vec<ShortestPathTree> {
        self.node_ids()
            .map(|s| dijkstra(self, s).expect("node ids from iterator are valid"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node diamond: a-b-d and a-c-d, with the b branch cheaper.
    fn diamond() -> (Graph, [NodeId; 4]) {
        let mut g = Graph::new();
        let a = g.add_node("a", 0);
        let b = g.add_node("b", 0);
        let c = g.add_node("c", 0);
        let d = g.add_node("d", 0);
        g.add_link(a, b, 1.0, 1.0).unwrap();
        g.add_link(b, d, 1.0, 1.0).unwrap();
        g.add_link(a, c, 1.0, 2.0).unwrap();
        g.add_link(c, d, 1.0, 2.0).unwrap();
        (g, [a, b, c, d])
    }

    #[test]
    fn picks_cheaper_branch() {
        let (g, [a, b, _, d]) = diamond();
        let p = g.shortest_path(a, d).unwrap();
        assert_eq!(p.nodes(), &[a, b, d]);
        let t = dijkstra(&g, a).unwrap();
        assert_eq!(t.distance(d), Some(2.0));
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new();
        let a = g.add_node("a", 0);
        let b = g.add_node("b", 0);
        assert!(g.shortest_path(a, b).is_none());
        let t = dijkstra(&g, a).unwrap();
        assert_eq!(t.distance(b), None);
    }

    #[test]
    fn source_to_source_is_single_node() {
        let (g, [a, ..]) = diamond();
        let p = g.shortest_path(a, a).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two equal-cost 2-hop routes a->b->d / a->c->d; lower-id
        // predecessor must win every time.
        let mut g = Graph::new();
        let a = g.add_node("a", 0);
        let b = g.add_node("b", 0);
        let c = g.add_node("c", 0);
        let d = g.add_node("d", 0);
        g.add_link(a, b, 1.0, 1.0).unwrap();
        g.add_link(a, c, 1.0, 1.0).unwrap();
        g.add_link(b, d, 1.0, 1.0).unwrap();
        g.add_link(c, d, 1.0, 1.0).unwrap();
        for _ in 0..10 {
            let p = g.shortest_path(a, d).unwrap();
            assert_eq!(p.nodes(), &[a, b, d]);
        }
    }

    #[test]
    fn all_pairs_covers_every_source() {
        let (g, [a, _, _, d]) = diamond();
        let trees = g.all_pairs();
        assert_eq!(trees.len(), 4);
        assert_eq!(trees[a.0].path_to(d).unwrap().hops(), 2);
        assert_eq!(trees[d.0].path_to(a).unwrap().hops(), 2);
    }

    #[test]
    fn unknown_source_errors() {
        let g = Graph::new();
        assert!(dijkstra(&g, NodeId(0)).is_err());
    }
}
