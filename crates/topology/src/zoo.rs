//! Deterministic builders for the four evaluation topologies of the paper
//! plus generic generators used in tests and ablations.
//!
//! * [`internet2`] — 12 nodes / 15 links (campus representative),
//! * [`geant`] — 23 nodes / 37 undirected (74 directed) links (enterprise),
//! * [`univ1`] — 23 nodes / 43 links, 2-tier campus data center,
//! * [`as3679`] — 79 nodes / 147 links, synthetic Rocketfuel-shaped ISP map.
//!
//! The Rocketfuel AS-3679 map is not redistributable, so [`as3679`] grows a
//! preferential-attachment backbone with the same node/link counts — Table V
//! of the paper only exercises solver scaling with topology size, which this
//! preserves (see DESIGN.md §2).

use crate::graph::{Graph, NodeId};
use apple_rng::rngs::StdRng;
use apple_rng::{Rng, SeedableRng};

/// Which evaluation topology a [`Topology`] instance was built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// 12-node Internet2/Abilene-style research backbone.
    Internet2,
    /// 23-node GEANT European research network.
    Geant,
    /// 23-node two-tier campus data center (UNIV1 in Benson et al.).
    Univ1,
    /// 79-node synthetic Rocketfuel-style ISP (AS-3679 shaped).
    As3679,
    /// Synthetic topology from one of the generic generators.
    Synthetic,
}

impl TopologyKind {
    /// The display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Internet2 => "Internet2",
            TopologyKind::Geant => "GEANT",
            TopologyKind::Univ1 => "UNIV1",
            TopologyKind::As3679 => "AS-3679",
            TopologyKind::Synthetic => "Synthetic",
        }
    }

    /// The three topologies used in the steady-state experiments (Figs
    /// 10–12). AS-3679 is used only for solve-time scaling (Table V).
    pub fn evaluation_trio() -> [TopologyKind; 3] {
        [
            TopologyKind::Internet2,
            TopologyKind::Geant,
            TopologyKind::Univ1,
        ]
    }

    /// All four topologies, as used in Table V.
    pub fn all() -> [TopologyKind; 4] {
        [
            TopologyKind::Internet2,
            TopologyKind::Geant,
            TopologyKind::Univ1,
            TopologyKind::As3679,
        ]
    }

    /// Builds this topology deterministically.
    pub fn build(self) -> Topology {
        match self {
            TopologyKind::Internet2 => internet2(),
            TopologyKind::Geant => geant(),
            TopologyKind::Univ1 => univ1(),
            TopologyKind::As3679 => as3679(),
            TopologyKind::Synthetic => line(4),
        }
    }
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A named topology: the graph plus metadata the rest of the framework needs.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Which evaluation topology this is.
    pub kind: TopologyKind,
    /// The switch/link graph.
    pub graph: Graph,
    /// Switches that can attach traffic sources/sinks (all of them for
    /// backbones; edge tier only for the data center).
    pub edge_nodes: Vec<NodeId>,
    /// Whether routing should spread over equal-cost multipaths (true for
    /// the data center, false for the backbones).
    pub multipath: bool,
}

impl Topology {
    /// Human-readable one-line summary, e.g. `GEANT: 23 nodes, 74 links`.
    pub fn summary(&self) -> String {
        // GEANT's public data set counts directed links; the other three
        // count undirected, matching the paper's Table V row values.
        let links = if self.kind == TopologyKind::Geant {
            self.graph.directed_link_count()
        } else {
            self.graph.undirected_link_count()
        };
        format!(
            "{}: {} nodes, {} links",
            self.kind.name(),
            self.graph.node_count(),
            links
        )
    }
}

/// Builds the 12-node / 15-link Internet2-style research backbone.
///
/// Node names follow the classic Abilene/Internet2 PoP cities. Links are
/// OC-192 (10 Gbps) with unit IGP weight.
pub fn internet2() -> Topology {
    let cities = [
        "Seattle",      // 0
        "Sunnyvale",    // 1
        "LosAngeles",   // 2
        "SaltLakeCity", // 3
        "Denver",       // 4
        "KansasCity",   // 5
        "Houston",      // 6
        "Chicago",      // 7
        "Indianapolis", // 8
        "Atlanta",      // 9
        "WashingtonDC", // 10
        "NewYork",      // 11
    ];
    let mut g = Graph::new();
    let ids: Vec<NodeId> = cities.iter().map(|c| g.add_node(*c, 0)).collect();
    let links = [
        (0, 1),
        (0, 4),
        (1, 2),
        (1, 3),
        (2, 6),
        (3, 4),
        (4, 5),
        (5, 6),
        (5, 7),
        (6, 9),
        (7, 8),
        (7, 11),
        (8, 9),
        (9, 10),
        (10, 11),
    ];
    for (a, b) in links {
        g.add_link(ids[a], ids[b], 10_000.0, 1.0)
            .expect("static link table is valid");
    }
    debug_assert!(g.is_connected());
    let edge_nodes = g.node_ids().collect();
    Topology {
        kind: TopologyKind::Internet2,
        graph: g,
        edge_nodes,
        multipath: false,
    }
}

/// Builds the 23-node GEANT European research network with 37 undirected
/// (74 directed) links, matching the TOTEM data set's counts.
pub fn geant() -> Topology {
    let pops = [
        "AT", "BE", "CH", "CZ", "DE", "ES", "FR", "GR", "HR", "HU", "IE", "IL", "IT", "LU", "NL",
        "NY", "PL", "PT", "SE", "SI", "SK", "UK", "DE2",
    ];
    let mut g = Graph::new();
    let ids: Vec<NodeId> = pops.iter().map(|c| g.add_node(*c, 0)).collect();
    // A GEANT-shaped mesh: a dense western core (DE/FR/UK/NL/IT/CH) with
    // stub national PoPs, 37 undirected adjacencies in total.
    let links = [
        (0, 2),   // AT-CH
        (0, 3),   // AT-CZ
        (0, 4),   // AT-DE
        (0, 9),   // AT-HU
        (0, 12),  // AT-IT
        (0, 19),  // AT-SI
        (1, 4),   // BE-DE
        (1, 6),   // BE-FR
        (1, 14),  // BE-NL
        (2, 4),   // CH-DE
        (2, 6),   // CH-FR
        (2, 12),  // CH-IT
        (3, 4),   // CZ-DE
        (3, 16),  // CZ-PL
        (3, 20),  // CZ-SK
        (4, 6),   // DE-FR
        (4, 14),  // DE-NL
        (4, 18),  // DE-SE
        (4, 15),  // DE-NY
        (4, 22),  // DE-DE2
        (5, 6),   // ES-FR
        (5, 12),  // ES-IT
        (5, 17),  // ES-PT
        (6, 13),  // FR-LU
        (6, 21),  // FR-UK
        (7, 12),  // GR-IT
        (7, 0),   // GR-AT
        (8, 9),   // HR-HU
        (8, 19),  // HR-SI
        (9, 20),  // HU-SK
        (10, 21), // IE-UK
        (11, 12), // IL-IT
        (11, 15), // IL-NY
        (14, 21), // NL-UK
        (15, 21), // NY-UK
        (16, 4),  // PL-DE
        (18, 14), // SE-NL
    ];
    for (a, b) in links {
        g.add_link(ids[a], ids[b], 10_000.0, 1.0)
            .expect("static link table is valid");
    }
    debug_assert_eq!(g.undirected_link_count(), 37);
    debug_assert!(g.is_connected());
    let edge_nodes = g.node_ids().collect();
    Topology {
        kind: TopologyKind::Geant,
        graph: g,
        edge_nodes,
        multipath: false,
    }
}

/// Builds UNIV1, a 2-tier campus data center: 2 core switches and 21 edge
/// switches, 43 links (each edge dual-homed to both cores, plus a core-core
/// link). All edge↔core links have equal weight so every edge-to-edge pair
/// has two equal-cost paths — the multipath behaviour Fig. 10 leans on.
pub fn univ1() -> Topology {
    let mut g = Graph::new();
    let core0 = g.add_node("core0", 0);
    let core1 = g.add_node("core1", 0);
    let mut edges = Vec::new();
    for i in 0..21 {
        let e = g.add_node(format!("edge{i}"), 1);
        edges.push(e);
    }
    g.add_link(core0, core1, 40_000.0, 1.0)
        .expect("core link valid");
    for &e in &edges {
        g.add_link(e, core0, 10_000.0, 1.0).expect("uplink valid");
        g.add_link(e, core1, 10_000.0, 1.0).expect("uplink valid");
    }
    debug_assert_eq!(g.node_count(), 23);
    debug_assert_eq!(g.undirected_link_count(), 43);
    Topology {
        kind: TopologyKind::Univ1,
        graph: g,
        edge_nodes: edges,
        multipath: true,
    }
}

/// Builds a 79-node / 147-link synthetic ISP topology shaped like the
/// Rocketfuel AS-3679 router-level map: a well-connected backbone of 12
/// routers plus preferential-attachment access routers.
///
/// Deterministic (fixed seed) so Table V timings are reproducible.
pub fn as3679() -> Topology {
    const NODES: usize = 79;
    const LINKS: usize = 147;
    const BACKBONE: usize = 12;
    let mut rng = StdRng::seed_from_u64(0x3679);
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..NODES)
        .map(|i| {
            let tier = if i < BACKBONE { 0 } else { 1 };
            g.add_node(format!("r{i}"), tier)
        })
        .collect();
    // Backbone ring + chords.
    for i in 0..BACKBONE {
        let j = (i + 1) % BACKBONE;
        g.add_link(ids[i], ids[j], 10_000.0, 1.0)
            .expect("ring link valid");
    }
    for i in 0..BACKBONE / 2 {
        g.add_link(ids[i], ids[i + BACKBONE / 2], 10_000.0, 1.0)
            .expect("chord link valid");
    }
    // Access routers: attach each to 1–2 existing routers, preferring high
    // degree (preferential attachment), then sprinkle extra links until the
    // target count is reached.
    for i in BACKBONE..NODES {
        let attach = pick_preferential(&g, &ids[..i], &mut rng);
        g.add_link(ids[i], attach, 2_500.0, 1.0)
            .expect("access link valid");
    }
    let mut guard = 0;
    while g.undirected_link_count() < LINKS && guard < 100_000 {
        guard += 1;
        let a = ids[rng.gen_range(0..NODES)];
        let b = pick_preferential(&g, &ids, &mut rng);
        if a != b && g.link_between(a, b).is_none() {
            g.add_link(a, b, 2_500.0, 1.0).expect("extra link valid");
        }
    }
    debug_assert_eq!(g.node_count(), NODES);
    debug_assert_eq!(g.undirected_link_count(), LINKS);
    debug_assert!(g.is_connected());
    let edge_nodes = g.node_ids().collect();
    Topology {
        kind: TopologyKind::As3679,
        graph: g,
        edge_nodes,
        multipath: false,
    }
}

fn pick_preferential(g: &Graph, candidates: &[NodeId], rng: &mut StdRng) -> NodeId {
    let total: usize = candidates.iter().map(|&n| g.degree(n) + 1).sum();
    let mut target = rng.gen_range(0..total);
    for &n in candidates {
        let w = g.degree(n) + 1;
        if target < w {
            return n;
        }
        target -= w;
    }
    *candidates.last().expect("candidates non-empty")
}

/// Builds a simple line topology of `n` switches (used by unit tests and
/// the quickstart example).
pub fn line(n: usize) -> Topology {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("n{i}"), 0)).collect();
    for w in ids.windows(2) {
        g.add_link(w[0], w[1], 10_000.0, 1.0)
            .expect("line links valid");
    }
    Topology {
        kind: TopologyKind::Synthetic,
        graph: g,
        edge_nodes: ids,
        multipath: false,
    }
}

/// Builds a star topology with one hub and `leaves` leaf switches.
pub fn star(leaves: usize) -> Topology {
    let mut g = Graph::new();
    let hub = g.add_node("hub", 0);
    let mut edge_nodes = Vec::new();
    for i in 0..leaves {
        let l = g.add_node(format!("leaf{i}"), 1);
        g.add_link(hub, l, 10_000.0, 1.0).expect("star links valid");
        edge_nodes.push(l);
    }
    Topology {
        kind: TopologyKind::Synthetic,
        graph: g,
        edge_nodes,
        multipath: false,
    }
}

/// Builds a `k`-ary fat-tree (k even): `k` pods of `k/2` edge + `k/2`
/// aggregation switches, plus `(k/2)²` core switches. The canonical
/// data-center fabric; used by extension experiments beyond the paper's
/// 2-tier UNIV1.
///
/// # Panics
///
/// Panics if `k` is odd or `< 2`.
pub fn fat_tree(k: usize) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even and >= 2"
    );
    let half = k / 2;
    let mut g = Graph::new();
    let cores: Vec<NodeId> = (0..half * half)
        .map(|i| g.add_node(format!("core{i}"), 0))
        .collect();
    let mut edges = Vec::new();
    for pod in 0..k {
        let aggs: Vec<NodeId> = (0..half)
            .map(|a| g.add_node(format!("agg{pod}_{a}"), 1))
            .collect();
        let pod_edges: Vec<NodeId> = (0..half)
            .map(|e| g.add_node(format!("edge{pod}_{e}"), 2))
            .collect();
        for (ai, &agg) in aggs.iter().enumerate() {
            // Each aggregation switch connects to `half` cores: the ai-th
            // group of cores.
            for c in 0..half {
                g.add_link(agg, cores[ai * half + c], 10_000.0, 1.0)
                    .expect("fat-tree core links valid");
            }
            for &e in &pod_edges {
                g.add_link(agg, e, 10_000.0, 1.0)
                    .expect("fat-tree pod links valid");
            }
        }
        edges.extend(pod_edges);
    }
    debug_assert!(g.is_connected());
    Topology {
        kind: TopologyKind::Synthetic,
        graph: g,
        edge_nodes: edges,
        multipath: true,
    }
}

/// Builds a Jellyfish-style random regular-ish topology: `n` switches each
/// aiming for degree `d`, wired uniformly at random (deterministic per
/// seed). Edge nodes are all switches.
///
/// # Panics
///
/// Panics if `n < d + 1` or `d < 2`.
pub fn jellyfish(n: usize, d: usize, seed: u64) -> Topology {
    assert!(d >= 2 && n > d, "need n > d >= 2");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4a45_4c4c_0059_u64);
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("j{i}"), 0)).collect();
    // Random spanning tree for connectivity, then random pairing until
    // degrees fill or attempts run out.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        g.add_link(ids[i], ids[j], 10_000.0, 1.0)
            .expect("tree links valid");
    }
    let mut guard = 0;
    while guard < 50_000 {
        guard += 1;
        let open: Vec<NodeId> = ids.iter().copied().filter(|&v| g.degree(v) < d).collect();
        if open.len() < 2 {
            break;
        }
        let a = open[rng.gen_range(0..open.len())];
        let b = open[rng.gen_range(0..open.len())];
        if a != b && g.link_between(a, b).is_none() {
            g.add_link(a, b, 10_000.0, 1.0).expect("random links valid");
        }
    }
    Topology {
        kind: TopologyKind::Synthetic,
        graph: g,
        edge_nodes: ids,
        multipath: true,
    }
}

/// Builds a random connected Waxman-style topology with `n` nodes and
/// roughly `avg_degree * n / 2` links. Deterministic for a given seed.
pub fn random_connected(n: usize, avg_degree: f64, seed: u64) -> Topology {
    assert!(n >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(format!("w{i}"), 0)).collect();
    // Random spanning tree first (guarantees connectivity).
    for i in 1..n {
        let j = rng.gen_range(0..i);
        g.add_link(ids[i], ids[j], 10_000.0, 1.0)
            .expect("tree links valid");
    }
    let target = ((avg_degree * n as f64) / 2.0).round() as usize;
    let mut guard = 0;
    while g.undirected_link_count() < target && guard < 100_000 {
        guard += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && g.link_between(ids[a], ids[b]).is_none() {
            g.add_link(ids[a], ids[b], 10_000.0, 1.0)
                .expect("extra links valid");
        }
    }
    let edge_nodes = g.node_ids().collect();
    Topology {
        kind: TopologyKind::Synthetic,
        graph: g,
        edge_nodes,
        multipath: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internet2_counts_match_paper() {
        let t = internet2();
        assert_eq!(t.graph.node_count(), 12);
        assert_eq!(t.graph.undirected_link_count(), 15);
        assert!(t.graph.is_connected());
        assert_eq!(t.summary(), "Internet2: 12 nodes, 15 links");
    }

    #[test]
    fn geant_counts_match_paper() {
        let t = geant();
        assert_eq!(t.graph.node_count(), 23);
        assert_eq!(t.graph.directed_link_count(), 74);
        assert!(t.graph.is_connected());
        assert_eq!(t.summary(), "GEANT: 23 nodes, 74 links");
    }

    #[test]
    fn univ1_counts_match_paper() {
        let t = univ1();
        assert_eq!(t.graph.node_count(), 23);
        assert_eq!(t.graph.undirected_link_count(), 43);
        assert!(t.graph.is_connected());
        assert!(t.multipath);
        // Every edge pair has two equal-cost paths through the two cores.
        let e0 = t.edge_nodes[0];
        let e1 = t.edge_nodes[1];
        let ecmp = crate::ksp::ecmp_paths(&t.graph, e0, e1, 8);
        assert_eq!(ecmp.len(), 2);
    }

    #[test]
    fn as3679_counts_match_paper() {
        let t = as3679();
        assert_eq!(t.graph.node_count(), 79);
        assert_eq!(t.graph.undirected_link_count(), 147);
        assert!(t.graph.is_connected());
    }

    #[test]
    fn as3679_is_deterministic() {
        let a = as3679();
        let b = as3679();
        for id in a.graph.link_ids() {
            let la = a.graph.link(id).unwrap();
            let lb = b.graph.link(id).unwrap();
            assert_eq!((la.a, la.b), (lb.a, lb.b));
        }
    }

    #[test]
    fn kind_build_roundtrip() {
        for kind in TopologyKind::all() {
            let t = kind.build();
            assert_eq!(t.kind, kind);
            assert!(t.graph.is_connected());
        }
    }

    #[test]
    fn generic_generators() {
        let l = line(5);
        assert_eq!(l.graph.undirected_link_count(), 4);
        let s = star(6);
        assert_eq!(s.graph.node_count(), 7);
        assert_eq!(s.graph.degree(NodeId(0)), 6);
        let r = random_connected(30, 3.0, 7);
        assert!(r.graph.is_connected());
        assert!(r.graph.undirected_link_count() >= 29);
    }

    #[test]
    fn fat_tree_k4_structure() {
        let t = fat_tree(4);
        // k=4: 4 cores + 4 pods x (2 agg + 2 edge) = 20 switches.
        assert_eq!(t.graph.node_count(), 20);
        // Links: 4 pods x 2 agg x (2 core + 2 edge) = 32.
        assert_eq!(t.graph.undirected_link_count(), 32);
        assert!(t.graph.is_connected());
        assert_eq!(t.edge_nodes.len(), 8);
        assert!(t.multipath);
        // Cross-pod edge pairs have multiple equal-cost paths.
        let ecmp = crate::ksp::ecmp_paths(&t.graph, t.edge_nodes[0], t.edge_nodes[7], 8);
        assert!(
            ecmp.len() >= 2,
            "fat-tree should be multipath: {}",
            ecmp.len()
        );
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fat_tree_rejects_odd_arity() {
        fat_tree(3);
    }

    #[test]
    fn jellyfish_respects_degree_budget() {
        let t = jellyfish(20, 4, 9);
        assert!(t.graph.is_connected());
        // Spanning-tree construction can exceed d at a few unlucky nodes;
        // the random-pairing phase must respect it.
        let over: usize = t
            .graph
            .node_ids()
            .filter(|&v| t.graph.degree(v) > 6)
            .count();
        assert_eq!(over, 0, "degrees ballooned");
        // Deterministic per seed.
        let t2 = jellyfish(20, 4, 9);
        assert_eq!(
            t.graph.undirected_link_count(),
            t2.graph.undirected_link_count()
        );
    }

    #[test]
    fn univ1_edges_are_tier1() {
        let t = univ1();
        for &e in &t.edge_nodes {
            assert_eq!(t.graph.node(e).unwrap().tier, 1);
        }
    }
}
