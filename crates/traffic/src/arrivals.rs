//! Flow-level arrival processes: Poisson arrivals with exponential
//! holding times.
//!
//! The snapshot-level [`crate::series::TmSeries`] is what the paper's
//! evaluation replays; finer-grained experiments (the online placer, the
//! packet-level replay) need individual flows arriving and departing. This
//! module generates a deterministic M/M/∞-style timeline per OD pair:
//! arrivals at rate `λ`, independent exponential durations with mean `D`,
//! so the expected number of concurrent flows is `λ·D` (Little's law —
//! which the tests check).

use crate::flows::Flow;
use apple_rng::rngs::StdRng;
use apple_rng::{Rng, SeedableRng};
use apple_topology::NodeId;

/// Configuration of a flow arrival process for one OD pair.
#[derive(Debug, Clone)]
pub struct ArrivalConfig {
    /// Flow arrivals per second (λ).
    pub arrival_rate: f64,
    /// Mean flow duration in seconds (1/μ).
    pub mean_duration_secs: f64,
    /// Mean per-flow rate in Mbps (exponentially distributed).
    pub mean_rate_mbps: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            arrival_rate: 2.0,
            mean_duration_secs: 30.0,
            mean_rate_mbps: 5.0,
            seed: 0,
        }
    }
}

/// One flow with its lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedFlow {
    /// The flow itself.
    pub flow: Flow,
    /// Arrival time (seconds).
    pub start_secs: f64,
    /// Departure time (seconds).
    pub end_secs: f64,
}

/// A generated arrival timeline for one OD pair.
#[derive(Debug, Clone, Default)]
pub struct FlowArrivals {
    flows: Vec<TimedFlow>,
}

impl FlowArrivals {
    /// Generates the timeline over `[0, horizon_secs)`.
    ///
    /// # Panics
    ///
    /// Panics if rates/durations are not positive and finite.
    pub fn generate(
        src: NodeId,
        dst: NodeId,
        cfg: &ArrivalConfig,
        horizon_secs: f64,
    ) -> FlowArrivals {
        assert!(
            cfg.arrival_rate > 0.0 && cfg.arrival_rate.is_finite(),
            "arrival rate must be positive"
        );
        assert!(
            cfg.mean_duration_secs > 0.0 && cfg.mean_rate_mbps > 0.0,
            "durations and rates must be positive"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ ((src.0 as u64) << 20) ^ dst.0 as u64);
        let mut exp = |mean: f64| -> f64 {
            let u: f64 = rng.gen_range(1e-12..1.0);
            -mean * u.ln()
        };
        let mut flows = Vec::new();
        let mut t = 0.0;
        let mut seq = 0u32;
        loop {
            t += exp(1.0 / cfg.arrival_rate);
            if t >= horizon_secs {
                break;
            }
            let duration = exp(cfg.mean_duration_secs);
            let rate = exp(cfg.mean_rate_mbps);
            let src_prefix = Flow::prefix_of(src);
            let dst_prefix = Flow::prefix_of(dst);
            flows.push(TimedFlow {
                flow: Flow {
                    src_ip: src_prefix | (1 + (seq % 250)),
                    dst_ip: dst_prefix | (1 + ((seq / 250) % 250)),
                    src_port: 10_000u16.wrapping_add((seq % 50_000) as u16),
                    dst_port: 80,
                    proto: 6,
                    rate_mbps: rate,
                    ingress: src,
                    egress: dst,
                },
                start_secs: t,
                end_secs: t + duration,
            });
            seq += 1;
        }
        FlowArrivals { flows }
    }

    /// All flows, in arrival order.
    pub fn flows(&self) -> &[TimedFlow] {
        &self.flows
    }

    /// Flows alive at time `t`.
    pub fn active_at(&self, t: f64) -> Vec<&TimedFlow> {
        self.flows
            .iter()
            .filter(|f| f.start_secs <= t && t < f.end_secs)
            .collect()
    }

    /// Aggregate offered rate at time `t` in Mbps.
    pub fn rate_at(&self, t: f64) -> f64 {
        self.active_at(t).iter().map(|f| f.flow.rate_mbps).sum()
    }

    /// Mean concurrent flows sampled at `samples` evenly spaced instants
    /// of `[warmup, horizon)`.
    pub fn mean_concurrency(&self, warmup: f64, horizon: f64, samples: usize) -> f64 {
        if samples == 0 || horizon <= warmup {
            return 0.0;
        }
        let step = (horizon - warmup) / samples as f64;
        let total: usize = (0..samples)
            .map(|i| self.active_at(warmup + i as f64 * step).len())
            .sum();
        total as f64 / samples as f64
    }
}

/// What happened to a flow at a timeline instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlowEventKind {
    /// The flow departed (its holding time expired). Departures sort
    /// before arrivals at equal timestamps so capacity is released before
    /// it is re-demanded.
    Departure,
    /// The flow arrived and starts offering traffic.
    Arrival,
}

/// One arrival or departure on a merged multi-pair timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowEvent {
    /// Event time in seconds from the timeline origin.
    pub time_secs: f64,
    /// Stable flow identifier, unique across the whole timeline (pair
    /// index in the high bits, per-pair sequence number in the low bits).
    pub flow_id: u64,
    /// Arrival or departure.
    pub kind: FlowEventKind,
    /// The flow this event is about (same object on arrival and
    /// departure).
    pub flow: Flow,
}

/// A merged, time-ordered arrival/departure timeline over many OD pairs —
/// the input of the online orchestration loop.
///
/// Every generated flow contributes exactly two events (its arrival and
/// its departure, even when the departure falls past the generation
/// horizon), so draining the timeline always returns the system to zero
/// active flows. Ordering is fully deterministic: events sort by time,
/// then departures before arrivals, then by flow id.
#[derive(Debug, Clone, Default)]
pub struct EventTimeline {
    events: Vec<FlowEvent>,
}

impl EventTimeline {
    /// Generates the merged timeline for `pairs` over `[0, horizon_secs)`
    /// of arrivals (departures may land later). Each pair runs an
    /// independent [`FlowArrivals`] process derived from `cfg.seed` — the
    /// same per-pair streams `FlowArrivals::generate` would produce.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` rates/durations are not positive (see
    /// [`FlowArrivals::generate`]) or if more than `2^32` pairs are given.
    pub fn generate(
        pairs: &[(NodeId, NodeId)],
        cfg: &ArrivalConfig,
        horizon_secs: f64,
    ) -> EventTimeline {
        assert!(pairs.len() < (1usize << 32), "too many OD pairs");
        let mut events = Vec::new();
        for (p, &(src, dst)) in pairs.iter().enumerate() {
            let arrivals = FlowArrivals::generate(src, dst, cfg, horizon_secs);
            for (seq, tf) in arrivals.flows().iter().enumerate() {
                let flow_id = ((p as u64) << 32) | seq as u64;
                events.push(FlowEvent {
                    time_secs: tf.start_secs,
                    flow_id,
                    kind: FlowEventKind::Arrival,
                    flow: tf.flow,
                });
                events.push(FlowEvent {
                    time_secs: tf.end_secs,
                    flow_id,
                    kind: FlowEventKind::Departure,
                    flow: tf.flow,
                });
            }
        }
        events.sort_by(|a, b| {
            a.time_secs
                .partial_cmp(&b.time_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.kind.cmp(&b.kind))
                .then_with(|| a.flow_id.cmp(&b.flow_id))
        });
        EventTimeline { events }
    }

    /// The events in replay order.
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// Number of events (twice the number of generated flows).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Truncates the timeline to its first `n` events (used by smoke
    /// benchmarks; the truncated timeline may no longer drain).
    pub fn truncated(&self, n: usize) -> EventTimeline {
        EventTimeline {
            events: self.events.iter().take(n).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn littles_law_holds() {
        // λ = 4/s, D = 10 s ⇒ E[concurrent] = 40.
        let cfg = ArrivalConfig {
            arrival_rate: 4.0,
            mean_duration_secs: 10.0,
            mean_rate_mbps: 2.0,
            seed: 3,
        };
        let a = FlowArrivals::generate(NodeId(0), NodeId(1), &cfg, 600.0);
        let mean = a.mean_concurrency(60.0, 600.0, 200);
        assert!(
            (mean - 40.0).abs() < 8.0,
            "Little's law violated: mean concurrency {mean} vs 40"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ArrivalConfig::default();
        let a = FlowArrivals::generate(NodeId(2), NodeId(3), &cfg, 100.0);
        let b = FlowArrivals::generate(NodeId(2), NodeId(3), &cfg, 100.0);
        assert_eq!(a.flows(), b.flows());
        let c = FlowArrivals::generate(
            NodeId(2),
            NodeId(3),
            &ArrivalConfig { seed: 9, ..cfg },
            100.0,
        );
        assert_ne!(a.flows(), c.flows());
    }

    #[test]
    fn rate_sums_active_flows() {
        let cfg = ArrivalConfig {
            arrival_rate: 1.0,
            mean_duration_secs: 5.0,
            mean_rate_mbps: 3.0,
            seed: 7,
        };
        let a = FlowArrivals::generate(NodeId(0), NodeId(1), &cfg, 60.0);
        let t = 30.0;
        let expected: f64 = a.active_at(t).iter().map(|f| f.flow.rate_mbps).sum();
        assert_eq!(a.rate_at(t), expected);
        // Flows end after they start.
        for f in a.flows() {
            assert!(f.end_secs > f.start_secs);
            assert!(f.flow.rate_mbps > 0.0);
        }
    }

    #[test]
    fn flows_carry_pair_prefixes() {
        let a = FlowArrivals::generate(NodeId(4), NodeId(5), &ArrivalConfig::default(), 50.0);
        for f in a.flows() {
            assert_eq!(f.flow.src_ip & 0xffff_ff00, Flow::prefix_of(NodeId(4)));
            assert_eq!(f.flow.dst_ip & 0xffff_ff00, Flow::prefix_of(NodeId(5)));
            assert_eq!(f.flow.ingress, NodeId(4));
        }
    }

    #[test]
    fn timeline_drains_and_orders() {
        let pairs = [(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))];
        let cfg = ArrivalConfig {
            seed: 11,
            ..Default::default()
        };
        let tl = EventTimeline::generate(&pairs, &cfg, 120.0);
        assert!(!tl.is_empty());
        assert_eq!(tl.len() % 2, 0, "two events per flow");
        let mut active = std::collections::BTreeSet::new();
        let mut last = (f64::NEG_INFINITY, FlowEventKind::Departure, 0u64);
        for e in tl.events() {
            let key = (e.time_secs, e.kind, e.flow_id);
            assert!(key > last, "events must be strictly ordered");
            last = key;
            match e.kind {
                FlowEventKind::Arrival => assert!(active.insert(e.flow_id)),
                FlowEventKind::Departure => assert!(active.remove(&e.flow_id)),
            }
        }
        assert!(active.is_empty(), "timeline must drain to zero flows");
    }

    #[test]
    fn timeline_deterministic_and_truncates() {
        let pairs = [(NodeId(1), NodeId(4))];
        let cfg = ArrivalConfig::default();
        let a = EventTimeline::generate(&pairs, &cfg, 80.0);
        let b = EventTimeline::generate(&pairs, &cfg, 80.0);
        assert_eq!(a.events(), b.events());
        let t = a.truncated(5);
        assert_eq!(t.len(), 5.min(a.len()));
        assert_eq!(t.events(), &a.events()[..t.len()]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_rate_panics() {
        let _ = FlowArrivals::generate(
            NodeId(0),
            NodeId(1),
            &ArrivalConfig {
                arrival_rate: 0.0,
                ..Default::default()
            },
            10.0,
        );
    }
}
