//! Flow-level expansion of OD-pair aggregates.
//!
//! APPLE's policy enforcement is ultimately per-flow (sub-class assignment
//! hashes or prefix-splits individual flows), so tests and the data-plane
//! walker need concrete flows. Each OD pair expands into a set of flows with
//! source addresses drawn from a per-node /24 prefix, letting the prefix
//! splitter of §V-A carve sub-classes like `10.1.1.128/25`.

use apple_rng::rngs::StdRng;
use apple_rng::{Rng, SeedableRng};
use apple_topology::NodeId;
use std::fmt;

/// A single flow: IPv4-style 5-tuple plus its offered rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Source address.
    pub src_ip: u32,
    /// Destination address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// 6 = TCP, 17 = UDP.
    pub proto: u8,
    /// Offered rate in Mbps.
    pub rate_mbps: f64,
    /// Ingress switch.
    pub ingress: NodeId,
    /// Egress switch.
    pub egress: NodeId,
}

impl Flow {
    /// The /24 prefix assigned to a switch's attached hosts: `10.N.N.0/24`
    /// encoded as `0x0A_NN_NN_00` (N = switch index, so prefixes are
    /// disjoint per switch for indices < 256).
    pub fn prefix_of(node: NodeId) -> u32 {
        let n = (node.0 as u32) & 0xff;
        0x0a00_0000 | (n << 16) | (n << 8)
    }

    /// Formats an address dotted-quad for diagnostics.
    pub fn fmt_ip(ip: u32) -> String {
        format!(
            "{}.{}.{}.{}",
            ip >> 24,
            (ip >> 16) & 0xff,
            (ip >> 8) & 0xff,
            ip & 0xff
        )
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {} ({:.2} Mbps)",
            Flow::fmt_ip(self.src_ip),
            self.src_port,
            Flow::fmt_ip(self.dst_ip),
            self.dst_port,
            self.proto,
            self.rate_mbps
        )
    }
}

/// A set of flows expanded from OD aggregates.
///
/// # Example
///
/// ```
/// use apple_topology::NodeId;
/// use apple_traffic::FlowSet;
///
/// let fs = FlowSet::expand(NodeId(1), NodeId(2), 100.0, 8, 42);
/// assert_eq!(fs.flows().len(), 8);
/// let total: f64 = fs.flows().iter().map(|f| f.rate_mbps).sum();
/// assert!((total - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowSet {
    flows: Vec<Flow>,
}

impl FlowSet {
    /// Expands one OD aggregate of `rate_mbps` into `count` flows with
    /// heavy-tailed (Zipf-ish) per-flow shares; deterministic per seed.
    pub fn expand(src: NodeId, dst: NodeId, rate_mbps: f64, count: usize, seed: u64) -> FlowSet {
        if count == 0 || rate_mbps <= 0.0 {
            return FlowSet::default();
        }
        let mut rng = StdRng::seed_from_u64(seed ^ ((src.0 as u64) << 32) ^ dst.0 as u64);
        // Zipf-like shares 1/k^0.8, normalised.
        let shares: Vec<f64> = (1..=count).map(|k| 1.0 / (k as f64).powf(0.8)).collect();
        let sum: f64 = shares.iter().sum();
        let src_prefix = Flow::prefix_of(src);
        let dst_prefix = Flow::prefix_of(dst);
        let flows = shares
            .iter()
            .map(|w| {
                let host: u32 = rng.gen_range(1u32..255);
                let dhost: u32 = rng.gen_range(1u32..255);
                Flow {
                    src_ip: src_prefix | host,
                    dst_ip: dst_prefix | dhost,
                    src_port: rng.gen_range(1024..u16::MAX),
                    dst_port: *[80u16, 443, 53, 8080, 22]
                        .get(rng.gen_range(0usize..5))
                        .expect("index in range"),
                    proto: if rng.gen_bool(0.8) { 6 } else { 17 },
                    rate_mbps: rate_mbps * w / sum,
                    ingress: src,
                    egress: dst,
                }
            })
            .collect();
        FlowSet { flows }
    }

    /// The flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Merges another set into this one.
    pub fn extend(&mut self, other: FlowSet) {
        self.flows.extend(other.flows);
    }

    /// Total offered rate.
    pub fn total_mbps(&self) -> f64 {
        self.flows.iter().map(|f| f.rate_mbps).sum()
    }
}

impl FromIterator<Flow> for FlowSet {
    fn from_iter<T: IntoIterator<Item = Flow>>(iter: T) -> Self {
        FlowSet {
            flows: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_preserves_rate() {
        let fs = FlowSet::expand(NodeId(3), NodeId(4), 250.0, 16, 1);
        assert_eq!(fs.flows().len(), 16);
        assert!((fs.total_mbps() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn src_ips_in_node_prefix() {
        let fs = FlowSet::expand(NodeId(7), NodeId(2), 10.0, 8, 2);
        let prefix = Flow::prefix_of(NodeId(7));
        for f in fs.flows() {
            assert_eq!(f.src_ip & 0xffff_ff00, prefix);
            assert_eq!(f.ingress, NodeId(7));
        }
    }

    #[test]
    fn prefixes_disjoint_per_node() {
        assert_ne!(Flow::prefix_of(NodeId(1)), Flow::prefix_of(NodeId(2)));
    }

    #[test]
    fn heavy_tail_shares() {
        let fs = FlowSet::expand(NodeId(0), NodeId(1), 100.0, 10, 3);
        let first = fs.flows()[0].rate_mbps;
        let last = fs.flows()[9].rate_mbps;
        assert!(first > 2.0 * last, "shares not heavy-tailed");
    }

    #[test]
    fn zero_cases() {
        assert!(FlowSet::expand(NodeId(0), NodeId(1), 0.0, 5, 0)
            .flows()
            .is_empty());
        assert!(FlowSet::expand(NodeId(0), NodeId(1), 5.0, 0, 0)
            .flows()
            .is_empty());
    }

    #[test]
    fn deterministic() {
        let a = FlowSet::expand(NodeId(0), NodeId(1), 5.0, 4, 9);
        let b = FlowSet::expand(NodeId(0), NodeId(1), 5.0, 4, 9);
        assert_eq!(a.flows(), b.flows());
    }

    #[test]
    fn display_formats_dotted_quad() {
        assert_eq!(Flow::fmt_ip(0x0a010203), "10.1.2.3");
        let fs = FlowSet::expand(NodeId(1), NodeId(2), 5.0, 1, 0);
        let s = fs.flows()[0].to_string();
        assert!(s.contains("->") && s.contains("Mbps"));
    }
}
