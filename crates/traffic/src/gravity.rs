//! Gravity-model base traffic matrices.
//!
//! The gravity model is the standard synthesis for backbone traffic
//! matrices (it is also what FNSS uses for the paper's AS-3679 series):
//! the rate from `s` to `d` is proportional to `mass(s) · mass(d)`, with
//! masses drawn log-normally to create the heavy spatial skew real networks
//! show.

use crate::matrix::TrafficMatrix;
use apple_rng::rngs::StdRng;
use apple_rng::{Rng, SeedableRng};
use apple_topology::{NodeId, Topology};

/// Gravity-model generator.
///
/// # Example
///
/// ```
/// use apple_topology::zoo;
/// use apple_traffic::GravityModel;
///
/// let topo = zoo::geant();
/// let tm = GravityModel::new(2_000.0, 0).base_matrix(&topo);
/// assert!((tm.total() - 2_000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct GravityModel {
    /// Target network-wide total offered load in Mbps.
    pub total_mbps: f64,
    /// Log-normal sigma of the node masses; larger values mean stronger
    /// skew. 0.8 approximates published backbone TM skew.
    pub mass_sigma: f64,
    seed: u64,
}

impl GravityModel {
    /// Creates a generator producing matrices whose entries sum to
    /// `total_mbps`.
    pub fn new(total_mbps: f64, seed: u64) -> Self {
        GravityModel {
            total_mbps,
            mass_sigma: 0.8,
            seed,
        }
    }

    /// Deterministic per-node masses (log-normal).
    pub fn masses(&self, topo: &Topology) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e3779b97f4a7c15);
        topo.edge_nodes
            .iter()
            .map(|_| {
                // Box-Muller from two uniforms for a normal sample.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (self.mass_sigma * z).exp()
            })
            .collect()
    }

    /// Generates the base (mean-level) traffic matrix over the topology's
    /// edge nodes, normalised so the total equals `total_mbps`.
    pub fn base_matrix(&self, topo: &Topology) -> TrafficMatrix {
        let n = topo.graph.node_count();
        let masses = self.masses(topo);
        let mut tm = TrafficMatrix::zeros(n);
        let mut weight_sum = 0.0;
        for (i, &s) in topo.edge_nodes.iter().enumerate() {
            for (j, &d) in topo.edge_nodes.iter().enumerate() {
                if s != d {
                    weight_sum += masses[i] * masses[j];
                    let _ = (s, d);
                }
            }
        }
        if weight_sum == 0.0 {
            return tm;
        }
        for (i, &s) in topo.edge_nodes.iter().enumerate() {
            for (j, &d) in topo.edge_nodes.iter().enumerate() {
                if s != d {
                    let w = masses[i] * masses[j] / weight_sum;
                    tm.set(s, d, self.total_mbps * w);
                }
            }
        }
        tm
    }

    /// Pairs `(src, dst)` ranked by descending gravity weight — used to pick
    /// the "heavy" classes for burst injection.
    pub fn ranked_pairs(&self, topo: &Topology) -> Vec<(NodeId, NodeId)> {
        let tm = self.base_matrix(topo);
        let mut pairs: Vec<(NodeId, NodeId, f64)> = tm.entries().collect();
        pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        pairs.into_iter().map(|(s, d, _)| (s, d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apple_topology::zoo;

    #[test]
    fn total_is_normalised() {
        let topo = zoo::internet2();
        let tm = GravityModel::new(5_000.0, 3).base_matrix(&topo);
        assert!((tm.total() - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = zoo::internet2();
        let a = GravityModel::new(1_000.0, 7).base_matrix(&topo);
        let b = GravityModel::new(1_000.0, 7).base_matrix(&topo);
        assert_eq!(a, b);
        let c = GravityModel::new(1_000.0, 8).base_matrix(&topo);
        assert_ne!(a, c);
    }

    #[test]
    fn diagonal_zero_everywhere() {
        let topo = zoo::geant();
        let tm = GravityModel::new(1_000.0, 1).base_matrix(&topo);
        for id in topo.graph.node_ids() {
            assert_eq!(tm.rate(id, id), 0.0);
        }
    }

    #[test]
    fn skew_exists() {
        // Log-normal masses must produce a visibly skewed matrix: the max
        // entry should be several times the mean entry.
        let topo = zoo::geant();
        let tm = GravityModel::new(1_000.0, 2).base_matrix(&topo);
        let n_pairs = (topo.edge_nodes.len() * (topo.edge_nodes.len() - 1)) as f64;
        let mean = tm.total() / n_pairs;
        assert!(tm.max_rate() > 3.0 * mean, "matrix not skewed enough");
    }

    #[test]
    fn univ1_only_uses_edge_nodes() {
        // Cores are not traffic sources in the data center.
        let topo = zoo::univ1();
        let tm = GravityModel::new(1_000.0, 4).base_matrix(&topo);
        let core0 = topo.graph.node_by_name("core0").unwrap();
        for d in topo.graph.node_ids() {
            assert_eq!(tm.rate(core0, d), 0.0);
            assert_eq!(tm.rate(d, core0), 0.0);
        }
    }

    #[test]
    fn ranked_pairs_descending() {
        let topo = zoo::internet2();
        let gm = GravityModel::new(1_000.0, 5);
        let tm = gm.base_matrix(&topo);
        let pairs = gm.ranked_pairs(&topo);
        assert!(!pairs.is_empty());
        for w in pairs.windows(2) {
            assert!(tm.rate(w[0].0, w[0].1) >= tm.rate(w[1].0, w[1].1));
        }
    }
}
