//! Traffic-matrix serialisation: a CSV-like text format compatible with how
//! public TM archives (Abilene, TOTEM) distribute their snapshots — one
//! `src,dst,rate` record per non-zero entry, with a size header.
//!
//! ```text
//! # apple-traffic matrix
//! size,12
//! 0,3,142.5
//! 0,7,12.25
//! ```
//!
//! [`TrafficMatrix::from_csv`]/[`TrafficMatrix::to_csv`] round-trip exactly;
//! [`crate::series::TmSeries`] snapshots can be dumped one file per
//! snapshot, which is the layout the Abilene archive uses.

use crate::matrix::TrafficMatrix;
use apple_topology::NodeId;
use std::fmt;
use std::fmt::Write as _;

/// Errors parsing the matrix CSV format.
#[derive(Debug, Clone, PartialEq)]
pub enum TmParseError {
    /// The `size,N` header is missing or malformed.
    MissingHeader,
    /// A record had the wrong number of fields or bad numbers.
    BadRecord { line: usize },
    /// An index was outside the declared size, or a rate invalid.
    BadEntry { line: usize },
}

impl fmt::Display for TmParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmParseError::MissingHeader => write!(f, "missing `size,N` header"),
            TmParseError::BadRecord { line } => write!(f, "line {line}: malformed record"),
            TmParseError::BadEntry { line } => {
                write!(f, "line {line}: entry out of range or invalid rate")
            }
        }
    }
}

impl std::error::Error for TmParseError {}

impl TrafficMatrix {
    /// Serialises the matrix (non-zero entries only).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# apple-traffic matrix\n");
        let _ = writeln!(out, "size,{}", self.size());
        for (s, d, r) in self.entries() {
            let _ = writeln!(out, "{},{},{}", s.0, d.0, r);
        }
        out
    }

    /// Parses a matrix from the CSV format.
    ///
    /// # Errors
    ///
    /// Any [`TmParseError`] variant; comments (`#`) and blank lines are
    /// skipped.
    pub fn from_csv(text: &str) -> Result<TrafficMatrix, TmParseError> {
        let mut tm: Option<TrafficMatrix> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
            match (&mut tm, fields.as_slice()) {
                (None, ["size", n]) => {
                    let n: usize = n.parse().map_err(|_| TmParseError::BadRecord { line })?;
                    tm = Some(TrafficMatrix::zeros(n));
                }
                (None, _) => return Err(TmParseError::MissingHeader),
                (Some(m), [s, d, r]) => {
                    let s: usize = s.parse().map_err(|_| TmParseError::BadRecord { line })?;
                    let d: usize = d.parse().map_err(|_| TmParseError::BadRecord { line })?;
                    let r: f64 = r.parse().map_err(|_| TmParseError::BadRecord { line })?;
                    if s >= m.size() || d >= m.size() || !r.is_finite() || r < 0.0 || s == d {
                        return Err(TmParseError::BadEntry { line });
                    }
                    m.set(NodeId(s), NodeId(d), r);
                }
                (Some(_), _) => return Err(TmParseError::BadRecord { line }),
            }
        }
        tm.ok_or(TmParseError::MissingHeader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gravity::GravityModel;
    use apple_topology::zoo;

    #[test]
    fn round_trip_exact() {
        let topo = zoo::internet2();
        let original = GravityModel::new(3_000.0, 12).base_matrix(&topo);
        let text = original.to_csv();
        let parsed = TrafficMatrix::from_csv(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn empty_matrix_round_trips() {
        let tm = TrafficMatrix::zeros(5);
        let parsed = TrafficMatrix::from_csv(&tm.to_csv()).unwrap();
        assert_eq!(parsed, tm);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(
            TrafficMatrix::from_csv("0,1,5.0"),
            Err(TmParseError::MissingHeader)
        );
        assert_eq!(
            TrafficMatrix::from_csv(""),
            Err(TmParseError::MissingHeader)
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let text = "size,3\n0,9,5.0";
        assert_eq!(
            TrafficMatrix::from_csv(text),
            Err(TmParseError::BadEntry { line: 2 })
        );
    }

    #[test]
    fn self_traffic_rejected() {
        let text = "size,3\n1,1,5.0";
        assert_eq!(
            TrafficMatrix::from_csv(text),
            Err(TmParseError::BadEntry { line: 2 })
        );
    }

    #[test]
    fn malformed_record_rejected() {
        let text = "size,3\n0,1";
        assert_eq!(
            TrafficMatrix::from_csv(text),
            Err(TmParseError::BadRecord { line: 2 })
        );
        let text2 = "size,3\n0,1,abc";
        assert_eq!(
            TrafficMatrix::from_csv(text2),
            Err(TmParseError::BadRecord { line: 2 })
        );
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let text = "# hi\nsize,2\n\n 0 , 1 , 7.5 \n";
        let tm = TrafficMatrix::from_csv(text).unwrap();
        assert_eq!(tm.rate(NodeId(0), NodeId(1)), 7.5);
    }
}
