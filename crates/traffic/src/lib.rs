//! Traffic matrix and workload generation for the APPLE reproduction.
//!
//! The paper's simulations replay **672 snapshots of time-varying traffic
//! matrices** per topology (Abilene/Internet2 TMs, TOTEM/GEANT TMs, and a
//! trace-derived series for the UNIV1 data center; AS-3679 matrices are
//! synthesised with FNSS). Those traces are not redistributable, so this
//! crate synthesises series with the statistical structure the evaluation
//! depends on:
//!
//! * **spatial skew** from a gravity model with log-normal node masses,
//! * **large-time-scale drift** via diurnal + weekly modulation (672
//!   snapshots = 7 days × 96 15-minute slots),
//! * **small-time-scale burstiness** via the power-law mean–variance
//!   relationship (MVR) of traffic rates cited in §IV-A — aggregated flows
//!   have variance `a·mean^b` with `b < 2`, which is exactly why
//!   class-level aggregation smooths traffic,
//! * **burst injection** for the fast-failover experiments (Fig 12),
//!   which need sudden rate spikes on individual classes.
//!
//! # Example
//!
//! ```
//! use apple_topology::zoo;
//! use apple_traffic::{SeriesConfig, TmSeries};
//!
//! let topo = zoo::internet2();
//! let series = TmSeries::generate(&topo, &SeriesConfig::paper(1));
//! assert_eq!(series.len(), 672);
//! let mean = series.mean();
//! assert!(mean.total() > 0.0);
//! ```

pub mod arrivals;
pub mod flows;
pub mod gravity;
pub mod io;
pub mod matrix;
pub mod series;

pub use flows::{Flow, FlowSet};
pub use gravity::GravityModel;
pub use matrix::TrafficMatrix;
pub use series::{SeriesConfig, TmSeries};
