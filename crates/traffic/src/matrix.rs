//! Dense origin–destination traffic matrices (rates in Mbps).

use apple_topology::NodeId;
use std::fmt;

/// A dense N×N traffic matrix; entry `(s, d)` is the aggregate rate from
/// switch `s` to switch `d` in Mbps. The diagonal is always zero.
///
/// # Example
///
/// ```
/// use apple_traffic::TrafficMatrix;
/// use apple_topology::NodeId;
///
/// let mut tm = TrafficMatrix::zeros(3);
/// tm.set(NodeId(0), NodeId(2), 120.0);
/// assert_eq!(tm.rate(NodeId(0), NodeId(2)), 120.0);
/// assert_eq!(tm.total(), 120.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMatrix {
    n: usize,
    rates: Vec<f64>,
}

impl TrafficMatrix {
    /// Creates an all-zero N×N matrix.
    pub fn zeros(n: usize) -> Self {
        TrafficMatrix {
            n,
            rates: vec![0.0; n * n],
        }
    }

    /// Number of switches.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Rate from `s` to `d` in Mbps (0.0 for out-of-range indices).
    pub fn rate(&self, s: NodeId, d: NodeId) -> f64 {
        if s.0 < self.n && d.0 < self.n {
            self.rates[s.0 * self.n + d.0]
        } else {
            0.0
        }
    }

    /// Sets the rate from `s` to `d`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range, the rate is negative /
    /// non-finite, or `s == d` with a non-zero rate (self-traffic never
    /// crosses the network).
    pub fn set(&mut self, s: NodeId, d: NodeId, mbps: f64) {
        assert!(s.0 < self.n && d.0 < self.n, "index out of range");
        assert!(
            mbps.is_finite() && mbps >= 0.0,
            "rate must be finite and >= 0"
        );
        assert!(s != d || mbps == 0.0, "self-traffic must be zero");
        self.rates[s.0 * self.n + d.0] = mbps;
    }

    /// Adds to the rate from `s` to `d` (clamping at zero).
    ///
    /// # Panics
    ///
    /// Same conditions as [`TrafficMatrix::set`], except negative deltas
    /// are allowed.
    pub fn add(&mut self, s: NodeId, d: NodeId, delta_mbps: f64) {
        let cur = self.rate(s, d);
        self.set(s, d, (cur + delta_mbps).max(0.0));
    }

    /// Sum of all entries (total offered load in Mbps).
    pub fn total(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Largest single entry.
    pub fn max_rate(&self) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }

    /// Iterates over the non-zero `(src, dst, rate)` entries in row-major
    /// order.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.n).flat_map(move |s| {
            (0..self.n).filter_map(move |d| {
                let r = self.rates[s * self.n + d];
                if r > 0.0 {
                    Some((NodeId(s), NodeId(d), r))
                } else {
                    None
                }
            })
        })
    }

    /// Per-source totals (row sums).
    pub fn egress_totals(&self) -> Vec<f64> {
        (0..self.n)
            .map(|s| self.rates[s * self.n..(s + 1) * self.n].iter().sum())
            .collect()
    }

    /// Component-wise mean of a set of matrices.
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty or the sizes differ.
    pub fn mean_of(mats: &[TrafficMatrix]) -> TrafficMatrix {
        assert!(!mats.is_empty(), "mean of zero matrices");
        let n = mats[0].n;
        let mut out = TrafficMatrix::zeros(n);
        for m in mats {
            assert_eq!(m.n, n, "matrix size mismatch");
            for i in 0..n * n {
                out.rates[i] += m.rates[i];
            }
        }
        let k = mats.len() as f64;
        for r in &mut out.rates {
            *r /= k;
        }
        out
    }

    /// Scales every entry by `k`.
    pub fn scaled(&self, k: f64) -> TrafficMatrix {
        let mut out = self.clone();
        for r in &mut out.rates {
            *r *= k;
        }
        out
    }
}

impl fmt::Display for TrafficMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TrafficMatrix {}x{} (total {:.1} Mbps)",
            self.n,
            self.n,
            self.total()
        )?;
        for s in 0..self.n {
            for d in 0..self.n {
                write!(f, "{:8.1}", self.rates[s * self.n + d])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_total() {
        let mut tm = TrafficMatrix::zeros(4);
        tm.set(NodeId(1), NodeId(2), 50.0);
        tm.set(NodeId(3), NodeId(0), 25.0);
        assert_eq!(tm.rate(NodeId(1), NodeId(2)), 50.0);
        assert_eq!(tm.total(), 75.0);
        assert_eq!(tm.max_rate(), 50.0);
    }

    #[test]
    fn out_of_range_reads_zero() {
        let tm = TrafficMatrix::zeros(2);
        assert_eq!(tm.rate(NodeId(5), NodeId(0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn self_traffic_rejected() {
        let mut tm = TrafficMatrix::zeros(2);
        tm.set(NodeId(1), NodeId(1), 5.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_rate_rejected() {
        let mut tm = TrafficMatrix::zeros(2);
        tm.set(NodeId(0), NodeId(1), -3.0);
    }

    #[test]
    fn add_clamps_at_zero() {
        let mut tm = TrafficMatrix::zeros(2);
        tm.set(NodeId(0), NodeId(1), 5.0);
        tm.add(NodeId(0), NodeId(1), -10.0);
        assert_eq!(tm.rate(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn entries_skip_zeros() {
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(NodeId(0), NodeId(1), 1.0);
        tm.set(NodeId(2), NodeId(0), 2.0);
        let e: Vec<_> = tm.entries().collect();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0], (NodeId(0), NodeId(1), 1.0));
    }

    #[test]
    fn mean_and_scale() {
        let mut a = TrafficMatrix::zeros(2);
        a.set(NodeId(0), NodeId(1), 10.0);
        let mut b = TrafficMatrix::zeros(2);
        b.set(NodeId(0), NodeId(1), 30.0);
        let m = TrafficMatrix::mean_of(&[a, b]);
        assert_eq!(m.rate(NodeId(0), NodeId(1)), 20.0);
        assert_eq!(m.scaled(0.5).total(), 10.0);
    }

    #[test]
    fn egress_totals_row_sums() {
        let mut tm = TrafficMatrix::zeros(3);
        tm.set(NodeId(0), NodeId(1), 1.0);
        tm.set(NodeId(0), NodeId(2), 2.0);
        tm.set(NodeId(1), NodeId(0), 4.0);
        assert_eq!(tm.egress_totals(), vec![3.0, 4.0, 0.0]);
    }
}
