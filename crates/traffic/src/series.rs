//! Time-varying traffic-matrix series: 672 snapshots with diurnal drift and
//! MVR power-law noise, plus burst injection for the failover experiments.

use crate::gravity::GravityModel;
use crate::matrix::TrafficMatrix;
use apple_rng::rngs::StdRng;
use apple_rng::{Rng, SeedableRng};
use apple_topology::{NodeId, Topology};

/// Configuration of a [`TmSeries`] generation run.
#[derive(Debug, Clone)]
pub struct SeriesConfig {
    /// Number of snapshots (the paper combines 672 per topology = 7 days of
    /// 15-minute samples).
    pub snapshots: usize,
    /// Network-wide mean total load in Mbps.
    pub total_mbps: f64,
    /// Depth of the diurnal swing, 0..1 (0.4 ⇒ valley is 60 % of peak).
    pub diurnal_depth: f64,
    /// Depth of the weekday/weekend swing, 0..1.
    pub weekly_depth: f64,
    /// MVR coefficient `a` in `var = a · mean^b`.
    pub mvr_a: f64,
    /// MVR exponent `b` (measurements on backbones report ~1.5; 2.0 would
    /// mean no smoothing from aggregation).
    pub mvr_b: f64,
    /// Number of OD pairs that receive sudden bursts, emulating the
    /// "fiercely changed traffic" of Fig 12.
    pub burst_pairs: usize,
    /// Burst magnitude as a multiple of the pair's base rate.
    pub burst_scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SeriesConfig {
    /// The configuration matching the paper's simulation setup for a given
    /// seed: 672 snapshots, moderate diurnal/weekly swing, backbone MVR.
    pub fn paper(seed: u64) -> SeriesConfig {
        SeriesConfig {
            snapshots: 672,
            total_mbps: 8_000.0,
            diurnal_depth: 0.4,
            weekly_depth: 0.15,
            mvr_a: 1.0,
            mvr_b: 1.5,
            burst_pairs: 3,
            burst_scale: 4.0,
            seed,
        }
    }

    /// A small, fast configuration for unit tests.
    pub fn small(seed: u64) -> SeriesConfig {
        SeriesConfig {
            snapshots: 48,
            total_mbps: 2_000.0,
            ..SeriesConfig::paper(seed)
        }
    }
}

/// A generated series of traffic matrices.
///
/// # Example
///
/// ```
/// use apple_topology::zoo;
/// use apple_traffic::{SeriesConfig, TmSeries};
///
/// let topo = zoo::internet2();
/// let series = TmSeries::generate(&topo, &SeriesConfig::small(0));
/// assert_eq!(series.len(), 48);
/// assert!(series.snapshot(0).total() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TmSeries {
    snapshots: Vec<TrafficMatrix>,
    /// OD pairs that received bursts, with the snapshot index where each
    /// burst begins (useful for plotting Fig 12's loss spikes).
    bursts: Vec<(NodeId, NodeId, usize)>,
}

impl TmSeries {
    /// Generates a series for the topology.
    pub fn generate(topo: &Topology, cfg: &SeriesConfig) -> TmSeries {
        let base = GravityModel::new(cfg.total_mbps, cfg.seed).base_matrix(topo);
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xa076_1d64_78bd_642f));
        let n = base.size();

        // Choose burst victims among the heaviest pairs.
        let ranked = GravityModel::new(cfg.total_mbps, cfg.seed).ranked_pairs(topo);
        let mut bursts = Vec::new();
        for (k, &(s, d)) in ranked.iter().take(cfg.burst_pairs).enumerate() {
            // Spread burst onsets across the middle of the series.
            let at = cfg.snapshots / 4 + (k * cfg.snapshots) / (2 * cfg.burst_pairs.max(1));
            bursts.push((s, d, at));
        }
        let burst_len = (cfg.snapshots / 24).max(2); // a couple of hours

        let mut snapshots = Vec::with_capacity(cfg.snapshots);
        for t in 0..cfg.snapshots {
            let mut tm = TrafficMatrix::zeros(n);
            let season = seasonal_factor(t, cfg);
            for (s, d, mean) in base.entries() {
                let level = mean * season;
                // MVR noise: std = sqrt(a · level^b); truncated at ±3σ and
                // floored at 5 % of the level.
                let std = (cfg.mvr_a * level.powf(cfg.mvr_b)).sqrt();
                let z = sample_normal(&mut rng).clamp(-3.0, 3.0);
                let rate = (level + std * z).max(0.05 * level);
                tm.set(s, d, rate);
            }
            for &(s, d, at) in &bursts {
                if t >= at && t < at + burst_len {
                    let extra = base.rate(s, d) * cfg.burst_scale;
                    tm.add(s, d, extra);
                }
            }
            snapshots.push(tm);
        }
        TmSeries { snapshots, bursts }
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True when the series has no snapshots.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The `i`-th snapshot.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn snapshot(&self, i: usize) -> &TrafficMatrix {
        &self.snapshots[i]
    }

    /// Iterates over the snapshots in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, TrafficMatrix> {
        self.snapshots.iter()
    }

    /// Mean matrix across all snapshots — the Optimization Engine's input
    /// in §IX-A ("whose traffic matrix input is the mean value of the 672
    /// snapshots").
    pub fn mean(&self) -> TrafficMatrix {
        TrafficMatrix::mean_of(&self.snapshots)
    }

    /// The injected bursts: `(src, dst, onset snapshot)`.
    pub fn bursts(&self) -> &[(NodeId, NodeId, usize)] {
        &self.bursts
    }
}

impl<'a> IntoIterator for &'a TmSeries {
    type Item = &'a TrafficMatrix;
    type IntoIter = std::slice::Iter<'a, TrafficMatrix>;
    fn into_iter(self) -> Self::IntoIter {
        self.snapshots.iter()
    }
}

/// Diurnal × weekly multiplicative factor at snapshot `t`.
fn seasonal_factor(t: usize, cfg: &SeriesConfig) -> f64 {
    // Map the series onto 7 days regardless of length.
    let day_frac = (t as f64 / cfg.snapshots as f64) * 7.0;
    let hour = (day_frac.fract()) * 24.0;
    // Peak around 14:00, valley around 02:00.
    let diurnal =
        1.0 - cfg.diurnal_depth * 0.5 * (1.0 + ((hour - 2.0) / 24.0 * std::f64::consts::TAU).cos());
    let weekday = day_frac as usize % 7;
    let weekly = if weekday >= 5 {
        1.0 - cfg.weekly_depth
    } else {
        1.0
    };
    diurnal * weekly
}

/// Standard normal sample via Box–Muller.
fn sample_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apple_topology::zoo;

    #[test]
    fn paper_series_has_672_snapshots() {
        let topo = zoo::internet2();
        let s = TmSeries::generate(&topo, &SeriesConfig::paper(0));
        assert_eq!(s.len(), 672);
        assert!(!s.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = zoo::internet2();
        let a = TmSeries::generate(&topo, &SeriesConfig::small(5));
        let b = TmSeries::generate(&topo, &SeriesConfig::small(5));
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn all_rates_non_negative_and_finite() {
        let topo = zoo::geant();
        let s = TmSeries::generate(&topo, &SeriesConfig::small(1));
        for tm in &s {
            for (_, _, r) in tm.entries() {
                assert!(r.is_finite() && r > 0.0);
            }
        }
    }

    #[test]
    fn mean_close_to_configured_total() {
        let topo = zoo::internet2();
        let cfg = SeriesConfig::paper(2);
        let s = TmSeries::generate(&topo, &cfg);
        let mean_total = s.mean().total();
        // Diurnal modulation pulls the mean below the base total; the
        // result must stay within a sane band around it.
        assert!(
            mean_total > 0.4 * cfg.total_mbps && mean_total < 1.6 * cfg.total_mbps,
            "mean {mean_total} vs configured {}",
            cfg.total_mbps
        );
    }

    #[test]
    fn bursts_visible_in_series() {
        let topo = zoo::internet2();
        let cfg = SeriesConfig::paper(3);
        let s = TmSeries::generate(&topo, &cfg);
        assert_eq!(s.bursts().len(), cfg.burst_pairs);
        for &(src, dst, at) in s.bursts() {
            let during = s.snapshot(at).rate(src, dst);
            let before = s.snapshot(at.saturating_sub(5)).rate(src, dst);
            assert!(
                during > 2.0 * before,
                "burst at {at} not visible: {before} -> {during}"
            );
        }
    }

    #[test]
    fn seasonal_factor_bounded() {
        let cfg = SeriesConfig::paper(0);
        for t in 0..cfg.snapshots {
            let f = seasonal_factor(t, &cfg);
            assert!(f > 0.3 && f <= 1.01, "factor {f} at {t}");
        }
    }

    #[test]
    fn aggregation_smooths_variance() {
        // The §IV-A claim: relative variance of an aggregate is below the
        // mean relative variance of its components (MVR with b < 2).
        let topo = zoo::geant();
        let s = TmSeries::generate(&topo, &SeriesConfig::small(4));
        let tm0 = s.snapshot(0);
        let pairs: Vec<_> = tm0.entries().map(|(a, b, _)| (a, b)).take(20).collect();
        let series_of = |src: NodeId, dst: NodeId| -> Vec<f64> {
            s.iter().map(|tm| tm.rate(src, dst)).collect()
        };
        let cv = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
            v.sqrt() / m
        };
        let mean_cv: f64 = pairs
            .iter()
            .map(|&(a, b)| cv(&series_of(a, b)))
            .sum::<f64>()
            / pairs.len() as f64;
        // Aggregate of the same pairs.
        let agg: Vec<f64> = s
            .iter()
            .map(|tm| pairs.iter().map(|&(a, b)| tm.rate(a, b)).sum::<f64>())
            .collect();
        assert!(
            cv(&agg) < mean_cv,
            "aggregate CV {} not below mean component CV {}",
            cv(&agg),
            mean_cv
        );
    }
}
