//! Campus-backbone scenario (the paper's Internet2 setting): generate a
//! 672-snapshot week of traffic, plan from the mean matrix, and re-run the
//! Optimization Engine per day to track large time-scale dynamics (§VI's
//! "periodically running the Optimization Engine").
//!
//! Run with `cargo run --release --example campus_backbone`.

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::engine::{EngineConfig, OptimizationEngine};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::topology::zoo;
use apple_nfv::traffic::{SeriesConfig, TmSeries, TrafficMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = zoo::internet2();
    let series = TmSeries::generate(&topo, &SeriesConfig::paper(42));
    println!(
        "{}: {} snapshots (7 days x 96 15-minute slots)",
        topo.summary(),
        series.len()
    );

    // Plan once from the weekly mean (what §IX-A does), then re-optimise
    // per day and compare instance counts as the diurnal level moves.
    let engine = OptimizationEngine::new(EngineConfig::default());
    let cfg = ClassConfig {
        max_classes: 30,
        ..Default::default()
    };
    let mean_classes = ClassSet::build(&topo, &series.mean(), &cfg);
    let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
    let mean_placement = engine.place(&mean_classes, &orch)?;
    println!(
        "weekly-mean plan: {} instances / {} cores (LP bound {:.1})",
        mean_placement.total_instances(),
        mean_placement.total_cores(),
        mean_placement.lp_objective()
    );

    println!("\nper-day re-optimisation:");
    let per_day = series.len() / 7;
    for day in 0..7 {
        let snaps: Vec<TrafficMatrix> = (0..per_day)
            .map(|i| series.snapshot(day * per_day + i).clone())
            .collect();
        let day_mean = TrafficMatrix::mean_of(&snaps);
        let classes = mean_classes.with_rates_from(&day_mean);
        let placement = engine.place(&classes, &orch)?;
        println!(
            "  day {}: offered {:>8.0} Mbps -> {} instances / {} cores",
            day + 1,
            day_mean.total(),
            placement.total_instances(),
            placement.total_cores()
        );
    }
    println!("\nweekend days track the lower offered load with fewer instances —");
    println!("the large time-scale elasticity the paper delegates to periodic re-optimisation.");
    Ok(())
}
