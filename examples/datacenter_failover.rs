//! Data-center scenario (the paper's UNIV1 setting): a 2-tier topology with
//! ECMP multipath, bursty traffic, and fast failover absorbing the bursts.
//!
//! Run with `cargo run --release --example datacenter_failover`.

use apple_nfv::core::classes::ClassConfig;
use apple_nfv::core::controller::AppleConfig;
use apple_nfv::sim::replay::{replay, ReplayConfig};
use apple_nfv::topology::zoo;
use apple_nfv::traffic::{SeriesConfig, TmSeries};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = zoo::univ1();
    println!("{} (2-tier, ECMP multipath)", topo.summary());
    let series = TmSeries::generate(
        &topo,
        &SeriesConfig {
            snapshots: 90,
            total_mbps: 9_000.0,
            burst_pairs: 3,
            burst_scale: 7.0,
            ..SeriesConfig::paper(77)
        },
    );
    let cfg = ReplayConfig {
        apple: AppleConfig {
            classes: ClassConfig {
                max_classes: 24,
                ..Default::default()
            },
            ..Default::default()
        },
        fast_failover: true,
        ..Default::default()
    };
    let with_ff = replay(&topo, &series, &cfg)?;
    let without_ff = replay(
        &topo,
        &series,
        &ReplayConfig {
            fast_failover: false,
            ..cfg
        },
    )?;

    println!(
        "steady-state plan: {} cores; bursts on {} OD pairs",
        with_ff.planned_cores,
        series.bursts().len()
    );
    println!("\n tick   loss w/ failover   loss w/o   helper cores");
    for i in 0..with_ff.loss.len() {
        let w = with_ff.loss.samples()[i].1;
        let wo = without_ff.loss.samples()[i].1;
        let hc = with_ff.helper_cores.samples()[i].1;
        // Print the interesting ticks (any activity) plus a sparse carrier.
        if w > 0.0 || wo > 0.0 || hc > 0.0 || i % 15 == 0 {
            println!("{i:>5}  {w:>16.4}  {wo:>9.4}  {hc:>12.0}");
        }
    }
    println!(
        "\nmean loss {:.4} (with) vs {:.4} (without); {} notifications, {} ClickOS helpers, peak {} extra cores",
        with_ff.loss.mean(),
        without_ff.loss.mean(),
        with_ff.notifications,
        with_ff.helpers_spawned,
        with_ff.peak_helper_cores
    );
    Ok(())
}
