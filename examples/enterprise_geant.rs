//! Enterprise scenario (the paper's GEANT setting): contrast APPLE with a
//! StEERING/SIMPLE-style traffic-steering deployment and with the ingress
//! strawman — the Table I and Fig. 11 story on one topology.
//!
//! Run with `cargo run --release --example enterprise_geant`.

use apple_nfv::core::baselines::{ingress_per_class, TrafficSteering};
use apple_nfv::core::classes::ClassConfig;
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = zoo::geant();
    println!("{}", topo.summary());
    let tm = GravityModel::new(6_000.0, 99).base_matrix(&topo);
    let config = AppleConfig {
        classes: ClassConfig {
            max_classes: 40,
            ..Default::default()
        },
        ..Default::default()
    };
    let apple = Apple::plan(&topo, &tm, &config)?;

    // Resource story (Fig. 11).
    let ingress = ingress_per_class(apple.classes());
    println!(
        "\ncores: APPLE {} vs ingress-consolidation {} ({:.1}x reduction)",
        apple.placement().total_cores(),
        ingress.total_cores(),
        f64::from(ingress.total_cores()) / f64::from(apple.placement().total_cores())
    );

    // Interference story (Table I).
    let steering = TrafficSteering::with_central_sites(&topo);
    let (changed, extra) = steering.interference(&topo, apple.classes());
    println!(
        "steering baseline: {:.0}% of classes re-routed, +{:.1} hops on average",
        changed * 100.0,
        extra
    );
    println!("APPLE: 0% re-routed — placement adapts to routing, never vice versa.");

    // TCAM story (Fig. 10).
    println!(
        "TCAM: {} entries tagged vs {} untagged ({:.1}x reduction)",
        apple.program().tcam.tagged_total,
        apple.program().tcam.untagged_total,
        apple.program().tcam.reduction_ratio()
    );

    // Where did the instances land?
    println!("\nplacement (switch -> instances):");
    for (v, nf, count) in apple.placement().q_entries() {
        let name = &topo.graph.node(v)?.name;
        println!("  {name:<5} {nf:<9} x{count}");
    }
    Ok(())
}
