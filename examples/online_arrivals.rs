//! Online arrivals: the extension the paper defers to future work (§IV).
//! Starting from a globally-optimised deployment, stream newly arriving
//! classes through the online placer and watch it reuse slack instances
//! before launching new ones.
//!
//! Run with `cargo run --release --example online_arrivals`.

use apple_nfv::core::classes::{ClassConfig, ClassId, ClassSet, EquivalenceClass};
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::core::online::OnlinePlacer;
use apple_nfv::topology::zoo;
use apple_nfv::traffic::{Flow, GravityModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = zoo::geant();
    println!("{}", topo.summary());
    let tm = GravityModel::new(3_000.0, 5).base_matrix(&topo);
    let mut apple = Apple::plan(
        &topo,
        &tm,
        &AppleConfig {
            classes: ClassConfig {
                max_classes: 20,
                ..Default::default()
            },
            ..Default::default()
        },
    )?;
    println!(
        "global plan: {} instances / {} cores for {} classes\n",
        apple.placement().total_instances(),
        apple.placement().total_cores(),
        apple.classes().len()
    );

    // Seed the online placer with the engine's committed loads, then
    // stream arrivals between OD pairs the plan did not cover.
    let mut placer = OnlinePlacer::from_assignment(&apple.program().assignment);
    let planned_pairs: std::collections::BTreeSet<_> = apple
        .classes()
        .iter()
        .map(EquivalenceClass::od_pair)
        .collect();
    let full = ClassSet::build(&topo, &tm, &ClassConfig::default());
    let arrivals: Vec<&EquivalenceClass> = full
        .iter()
        .filter(|c| !planned_pairs.contains(&c.od_pair()))
        .take(12)
        .collect();

    println!(
        "{:<28}{:>8}{:>10}{:>10}",
        "arriving class", "rate", "reused", "launched"
    );
    let mut total_launched = 0usize;
    for (i, template) in arrivals.iter().enumerate() {
        let class = EquivalenceClass {
            id: ClassId(i),
            path: template.path.clone(),
            chain: template.chain.clone(),
            rate_mbps: template.rate_mbps.max(20.0),
            src_prefix: (Flow::prefix_of(template.path.first()), 24),
            dst_prefix: (Flow::prefix_of(template.path.last()), 24),
            proto: None,
            dst_ports: Vec::new(),
        };
        match placer.place_class(&class, apple.orchestrator_mut()) {
            Ok(d) => {
                let reused = d.stage_instances.len() - d.launched.len();
                total_launched += d.launched.len();
                println!(
                    "{:<28}{:>7.0}M{:>10}{:>10}",
                    format!("{} ({})", class.path, class.chain),
                    class.rate_mbps,
                    reused,
                    d.launched.len()
                );
            }
            Err(e) => println!("{:<28} REJECTED: {e}", format!("{}", class.path)),
        }
    }
    println!(
        "\n{} arrivals placed with only {} new instances — the rest rode residual capacity.",
        arrivals.len(),
        total_launched
    );
    Ok(())
}
