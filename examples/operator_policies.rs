//! Operator-specified policies (§I's motivating example): parse a policy
//! file, build traffic classes from it, plan the deployment, and prove in
//! the data plane that http / dns / everything-else traffic between the
//! *same hosts* takes different chains.
//!
//! Run with `cargo run --release --example operator_policies`.

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::engine::{EngineConfig, OptimizationEngine};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::core::policy_spec::PolicySpec;
use apple_nfv::core::rules::generate;
use apple_nfv::core::subclass::{SplitStrategy, SubclassPlan};
use apple_nfv::dataplane::packet::Packet;
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;

const POLICY_FILE: &str = "\
# operator policies (the paper's introduction example)
policy http 0.45: dst_port 80,8080 => firewall -> ids -> proxy
policy https 0.3: dst_port 443 => firewall -> ids
policy dns 0.1: proto 17, dst_port 53 => firewall
default => nat -> firewall";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("policy file:\n{POLICY_FILE}\n");
    let spec = PolicySpec::parse(POLICY_FILE)?;

    let topo = zoo::internet2();
    let tm = GravityModel::new(1_500.0, 11).base_matrix(&topo);
    let classes = ClassSet::build_with_policies(
        &topo,
        &tm,
        &spec,
        &ClassConfig {
            max_classes: 120,
            ..Default::default()
        },
    );
    println!(
        "{} classes over {} OD pairs ({} policies + default)",
        classes.len(),
        classes
            .iter()
            .map(apple_nfv::core::classes::EquivalenceClass::od_pair)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        spec.rules().len()
    );

    let mut orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
    let placement = OptimizationEngine::new(EngineConfig::default()).place(&classes, &orch)?;
    let plan = SubclassPlan::derive(&classes, &placement, SplitStrategy::PrefixSplit);
    let program = generate(&topo, &classes, &plan, &placement, &mut orch)?;
    println!(
        "placed {} instances ({} cores); TCAM {} entries tagged\n",
        placement.total_instances(),
        placement.total_cores(),
        program.tcam.tagged_total
    );

    // Pick the OD pair with the most surviving classes and demo every
    // application whose class is present.
    let mut per_pair: std::collections::BTreeMap<_, Vec<usize>> = Default::default();
    for (i, c) in classes.iter().enumerate() {
        per_pair.entry(c.od_pair()).or_default().push(i);
    }
    let (_, idxs) = per_pair
        .iter()
        .max_by_key(|(_, v)| v.len())
        .expect("classes exist");
    let first = &classes.classes()[idxs[0]];
    let src = first.src_prefix.0 | 10;
    let dst = first.dst_prefix.0 | 20;
    println!("one host pair, different applications:");
    for (label, port, proto) in [
        ("http", 80u16, 6u8),
        ("https", 443, 6),
        ("dns", 53, 17),
        ("ssh", 22, 6),
    ] {
        // Find the class this packet belongs to (first-match, specific
        // before default — mirroring the TCAM priorities).
        let mut candidates: Vec<&_> = idxs.iter().map(|&i| &classes.classes()[i]).collect();
        candidates.sort_by_key(|c| {
            std::cmp::Reverse(u16::from(c.proto.is_some()) + 2 * u16::from(!c.dst_ports.is_empty()))
        });
        let owner = candidates.iter().find(|c| {
            c.proto.is_none_or(|p| p == proto)
                && (c.dst_ports.is_empty() || c.dst_ports.contains(&port))
        });
        let Some(owner) = owner else {
            println!("  {label:<6} (:{port:<5}) -> (class truncated away)");
            continue;
        };
        let packet = Packet::new(src, dst, 55_000, port, proto);
        let rec = program.walker.walk(packet, &owner.path)?;
        let chain: Vec<String> = rec
            .instances
            .iter()
            .map(|&id| orch.instance(id).expect("instances exist").nf().to_string())
            .collect();
        println!("  {label:<6} (:{port:<5}) -> {}", chain.join(" -> "));
    }
    println!("\nsame path, same hosts — different NF chains, enforced by TCAM transport");
    println!("predicates at the ingress switch; the forwarding path never changes.");
    Ok(())
}
