//! Quickstart: plan an APPLE deployment on the Internet2 backbone and watch
//! one packet traverse its policy chain without ever leaving its forwarding
//! path.
//!
//! Run with `cargo run --release --example quickstart`.

use apple_nfv::core::classes::ClassConfig;
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::dataplane::packet::Packet;
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A topology and a traffic matrix (normally measured; here a
    //    gravity-model synthesis).
    let topo = zoo::internet2();
    println!("topology: {}", topo.summary());
    let tm = GravityModel::new(2_000.0, 7).base_matrix(&topo);

    // 2. One call plans everything: equivalence classes, the ILP placement,
    //    sub-classes, instance launches, and the tagged data plane.
    let config = AppleConfig {
        classes: ClassConfig {
            max_classes: 20,
            ..Default::default()
        },
        ..Default::default()
    };
    let apple = Apple::plan(&topo, &tm, &config)?;
    println!(
        "planned {} VNF instances ({} CPU cores) for {} classes in {:?}",
        apple.placement().total_instances(),
        apple.placement().total_cores(),
        apple.classes().len(),
        apple.placement().solve_time(),
    );
    println!(
        "TCAM: {} tagged entries vs {} without tagging ({:.1}x reduction)",
        apple.program().tcam.tagged_total,
        apple.program().tcam.untagged_total,
        apple.program().tcam.reduction_ratio(),
    );

    // 3. Walk a packet of the heaviest class through the data plane.
    let class = &apple.classes().classes()[0];
    println!(
        "\nheaviest class: {} ({:.1} Mbps), chain {}, path {}",
        class.id, class.rate_mbps, class.chain, class.path
    );
    let packet = Packet::new(
        class.src_prefix.0 | 42,
        class.dst_prefix.0 | 7,
        50_000,
        80,
        6,
    );
    let record = apple.program().walker.walk(packet, &class.path)?;
    println!(
        "switch trajectory: {:?} (identical to the routing path)",
        record.switches
    );
    print!("VNF instances traversed:");
    for id in &record.instances {
        let inst = apple
            .orchestrator()
            .instance(*id)
            .expect("walked instances exist");
        print!(" {}({})", inst.nf(), id);
    }
    println!();
    println!("final tags: {}", record.packet);
    Ok(())
}
