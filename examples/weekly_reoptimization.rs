//! Weekly re-optimisation with make-before-break transitions (§VI's
//! large-time-scale handling): plan per day from that day's mean traffic,
//! then transition between consecutive plans — booting new instances
//! before switching rules, tearing old ones down after — and report the
//! cost of each hand-over.
//!
//! Run with `cargo run --release --example weekly_reoptimization`.

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::engine::{EngineConfig, OptimizationEngine};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::core::transition::{apply_transition, plan_transition};
use apple_nfv::core::verify::verify_placement;
use apple_nfv::nf::TimingModel;
use apple_nfv::topology::zoo;
use apple_nfv::traffic::{SeriesConfig, TmSeries, TrafficMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = zoo::geant();
    let series = TmSeries::generate(&topo, &SeriesConfig::paper(2_024));
    println!(
        "{}: one plan per day, staged transitions between them\n",
        topo.summary()
    );

    let engine = OptimizationEngine::new(EngineConfig::default());
    let class_cfg = ClassConfig {
        max_classes: 25,
        ..Default::default()
    };
    let base_classes = ClassSet::build(&topo, &series.mean(), &class_cfg);
    let mut timing = TimingModel::paper(7);

    let per_day = series.len() / 7;
    let mut previous = None;
    let mut orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
    println!(
        "{:<6}{:>10}{:>12}{:>10}{:>10}{:>10}{:>14}",
        "day", "instances", "cores", "keep", "launch", "retire", "hand-over"
    );
    for day in 0..7 {
        let snaps: Vec<TrafficMatrix> = (0..per_day)
            .map(|i| series.snapshot(day * per_day + i).clone())
            .collect();
        let day_mean = TrafficMatrix::mean_of(&snaps);
        let classes = base_classes.with_rates_from(&day_mean);
        let placement = engine.place(
            &classes,
            &ResourceOrchestrator::with_uniform_hosts(&topo, 64),
        )?;
        // Sanity: the plan satisfies Eq. (2)-(8).
        let violations = verify_placement(
            &classes,
            &placement,
            &ResourceOrchestrator::with_uniform_hosts(&topo, 64),
            1e-6,
        );
        assert!(
            violations.is_empty(),
            "day {day}: invalid plan: {violations:?}"
        );

        match previous {
            None => {
                // Day 0: cold start.
                for (v, nf, c) in placement.q_entries() {
                    for _ in 0..c {
                        orch.launch(v, nf)?;
                    }
                }
                println!(
                    "{:<6}{:>10}{:>12}{:>10}{:>10}{:>10}{:>14}",
                    day + 1,
                    placement.total_instances(),
                    placement.total_cores(),
                    "-",
                    placement.total_instances(),
                    "-",
                    "(cold start)"
                );
            }
            Some(prev) => {
                let plan = plan_transition(&prev, &placement, &mut timing);
                apply_transition(&plan, &mut orch)?;
                println!(
                    "{:<6}{:>10}{:>12}{:>10}{:>10}{:>10}{:>11.1} s",
                    day + 1,
                    placement.total_instances(),
                    placement.total_cores(),
                    plan.kept,
                    plan.launch_count(),
                    plan.teardown_count(),
                    plan.total_ms() as f64 / 1000.0
                );
            }
        }
        assert_eq!(orch.instance_count() as u32, placement.total_instances());
        previous = Some(placement);
    }
    println!("\nevery hand-over boots replacements before touching rules (make-before-break),");
    println!("so traffic never points at a VM that is still starting — the Fig. 7 failure mode.");
    Ok(())
}
