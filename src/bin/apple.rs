//! `apple` — command-line front end to the APPLE reproduction.
//!
//! ```text
//! apple topo   <TOPO> [--dot | --edges | --stats]
//! apple plan   <TOPO> [--load MBPS] [--classes K] [--seed S]
//! apple replay <TOPO> [--snapshots N] [--no-failover] [--seed S]
//! apple chaos  <TOPO> [--schedules N] [--seed S] [--classes K] [--load MBPS]
//! apple online <TOPO> [--horizon SECS] [--rate R] [--resolve-every N] [--seed S]
//! apple recover <TOPO> [--horizon SECS] [--rate R] [--seed S] [--kill-at N] [--torn] [--snapshot-every N]
//! apple compile <TOPO> [--classes K] [--load MBPS] [--seed S] [--incremental]
//! apple walk   <TOPO> [--engine linear|compiled] [--threads N] [--repeats N]
//! apple export-lp <TOPO> [--classes K] [--load MBPS] [--seed S]
//! ```
//!
//! `<TOPO>` is `internet2`, `geant`, `univ1`, `as3679`, `fat-tree:K`, or
//! `jellyfish:N:D`. `plan`, `replay`, `chaos` and `online` also take
//! `--solve-mode mono|decomposed` and `--threads N` to pick the placement
//! LP strategy (see `apple_lp::decompose`).

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::core::engine::{EngineConfig, OptimizationEngine, SolveMode};
use apple_nfv::core::online::OnlineConfig;
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::core::recovery::{
    encode_state, reconcile, recover, state_digest, JournaledLoop, RecoveryConfig, RecoverySetup,
    SharedFabric,
};
use apple_nfv::core::rules::{generate_with, snapshot_of, RuleGenConfig};
use apple_nfv::core::subclass::{SplitStrategy, SubclassPlan};
use apple_nfv::dataplane::compiler::compile_recorded;
use apple_nfv::dataplane::diff::diff_recorded;
use apple_nfv::dataplane::fastpath::CompiledProgram;
use apple_nfv::dataplane::southbound::SouthboundConfig;
use apple_nfv::dataplane::walk::WalkEngine;
use apple_nfv::faults::crash::{install_quiet_kill_hook, kill_of};
use apple_nfv::faults::{CrashPoint, FaultPlanConfig};
use apple_nfv::journal::SharedMemStore;
use apple_nfv::nf::InstanceId;
use apple_nfv::sim::chaos::run_schedule;
use apple_nfv::sim::inflight_conformance::{inflight_conformance, InflightConfig};
use apple_nfv::sim::online::{build_timeline, run_timeline, OnlineRunConfig};
use apple_nfv::sim::packet_replay::{
    conformance_probes, repair_conformance, walk_batch, EngineKind, WalkEngineConfig,
};
use apple_nfv::sim::replay::{replay_recorded, ReplayConfig};
use apple_nfv::telemetry::{MemoryRecorder, Recorder, NOOP};
use apple_nfv::topology::{zoo, Topology};
use apple_nfv::traffic::arrivals::ArrivalConfig;
use apple_nfv::traffic::{GravityModel, SeriesConfig, TmSeries};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  apple topo   <TOPO> [--dot | --edges | --stats]
  apple plan   <TOPO> [--load MBPS] [--classes K] [--seed S] [--telemetry json]
  apple replay <TOPO> [--snapshots N] [--no-failover] [--seed S] [--telemetry json]
  apple chaos  <TOPO> [--schedules N] [--seed S] [--classes K] [--load MBPS] [--telemetry json]
  apple online <TOPO> [--horizon SECS] [--rate R] [--resolve-every N] [--seed S] [--telemetry json]
  apple recover <TOPO> [--horizon SECS] [--rate R] [--seed S] [--kill-at N] [--torn]
               [--snapshot-every N] [--resolve-every N] [--telemetry json]
  apple compile <TOPO> [--classes K] [--load MBPS] [--seed S] [--incremental] [--telemetry json]
  apple walk   <TOPO> [--engine linear|compiled] [--threads N] [--repeats N]
               [--classes K] [--load MBPS] [--seed S]
  apple southbound <TOPO> [--classes K] [--load MBPS] [--seed S]
               [--engine linear|compiled] [--threads N]
  apple export-lp <TOPO> [--classes K] [--load MBPS] [--seed S]

TOPO: internet2 | geant | univ1 | as3679 | fat-tree:K | jellyfish:N:D

plan, replay, chaos and online additionally accept:
  --solve-mode mono|decomposed   placement LP strategy (default mono);
                                 decomposed splits the LP into independent
                                 blocks and solves them concurrently
  --threads N                    worker threads for decomposed solves
                                 (0 = one per CPU; ignored for mono)

--telemetry json prints the run's metric snapshot (counters, gauges,
histograms) as JSON on stdout after the normal output.

chaos replays N seeded fault schedules (instance crashes, host failures,
flaky boots and rule installs) against one planned deployment and verifies
interference freedom and traffic accounting after every event.

online streams a seeded flow arrival/departure timeline through the
incremental orchestration loop: classes are maintained per event, new
classes placed against the residual-capacity ledger, and a warm-started
global re-solve runs every --resolve-every events.

recover demonstrates the crash-recovery subsystem end to end: it streams
the online timeline through a write-ahead-journaled controller, kills it
at crash site --kill-at (counted across journal appends, snapshot writes
and data-plane barriers; 0 = halfway through the run; --torn leaves a
half-written journal record behind), then recovers from the surviving
store, reconciles the torn switch fabric against the recovered intent,
replays the repair through the packet-level conformance battery, resumes
the rest of the timeline and checks the final state is bitwise-equal to
a never-crashed twin.

compile plans a deployment, lowers it into a compiler snapshot and runs
the deterministic Table III rule compiler over it. With --incremental it
also models a single-sub-class churn step (one chain stage re-served by a
fresh instance) and prints the incremental update plan's operation bill
against the full-recompile cost.

walk plans and compiles a deployment, derives its packet-probe battery and
replays it --repeats times through the chosen walk engine: `linear` is the
reference first-match scan, `compiled` (default) the per-switch LPM-trie /
exact-match fast path of DESIGN.md 12. --threads N fans the battery out
over scoped worker threads (0 = one per CPU). Prints walks/sec; exits
non-zero if any probe fails to walk.

southbound plans and compiles a deployment, models a single-sub-class
churn step, and pushes the incremental update plan through the seeded
asynchronous southbound channel (70 ms/rule install latency, per-device
reordering, explicit barrier acks; DESIGN.md 13) while walking the full
packet-probe battery at every 10 ms scheduler tick. Prints the in-flight
walk classification (bitwise-old / bitwise-new / chain-consistent) and
the virtual drain time; exits non-zero if any tick observes a transient
chain bypass.";

/// Parsed optional flags.
struct Flags {
    load: f64,
    classes: usize,
    seed: u64,
    snapshots: usize,
    schedules: usize,
    horizon: f64,
    rate: f64,
    resolve_every: u64,
    failover: bool,
    dot: bool,
    edges: bool,
    stats: bool,
    incremental: bool,
    telemetry: bool,
    solve_mode: SolveMode,
    threads: usize,
    snapshot_every: u64,
    kill_at: u64,
    torn: bool,
    engine: EngineKind,
    repeats: usize,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            load: 2_000.0,
            classes: 20,
            seed: 0,
            snapshots: 96,
            schedules: 8,
            horizon: 60.0,
            rate: 1.0,
            resolve_every: 1_000,
            failover: true,
            dot: false,
            edges: false,
            stats: false,
            incremental: false,
            telemetry: false,
            solve_mode: SolveMode::Monolithic,
            threads: 0,
            snapshot_every: 64,
            kill_at: 0,
            torn: false,
            engine: EngineKind::default(),
            repeats: 32,
        }
    }
}

impl Flags {
    /// The planning configuration these flags describe.
    fn apple_config(&self) -> AppleConfig {
        AppleConfig {
            classes: ClassConfig {
                max_classes: self.classes,
                ..Default::default()
            },
            engine: EngineConfig {
                solve_mode: self.solve_mode,
                threads: self.threads,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// In-memory recorder when `--telemetry json` was given, `None` otherwise;
/// borrow through [`recorder_ref`] to get the `&dyn Recorder` to thread.
fn make_recorder(flags: &Flags) -> Option<MemoryRecorder> {
    flags.telemetry.then(MemoryRecorder::new)
}

fn recorder_ref(mem: &Option<MemoryRecorder>) -> &dyn Recorder {
    mem.as_ref()
        .map_or(&NOOP as &dyn Recorder, |m| m as &dyn Recorder)
}

/// Prints the snapshot as JSON when telemetry was requested.
fn emit_telemetry(mem: &Option<MemoryRecorder>) {
    if let Some(m) = mem {
        println!("{}", m.snapshot().to_json());
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--load" => f.load = num("--load")?.parse().map_err(|_| "bad --load")?,
            "--classes" => f.classes = num("--classes")?.parse().map_err(|_| "bad --classes")?,
            "--seed" => f.seed = num("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--snapshots" => {
                f.snapshots = num("--snapshots")?.parse().map_err(|_| "bad --snapshots")?
            }
            "--schedules" => {
                f.schedules = num("--schedules")?.parse().map_err(|_| "bad --schedules")?
            }
            "--horizon" => f.horizon = num("--horizon")?.parse().map_err(|_| "bad --horizon")?,
            "--rate" => f.rate = num("--rate")?.parse().map_err(|_| "bad --rate")?,
            "--resolve-every" => {
                f.resolve_every = num("--resolve-every")?
                    .parse()
                    .map_err(|_| "bad --resolve-every")?
            }
            "--no-failover" => f.failover = false,
            "--telemetry" => match num("--telemetry")?.as_str() {
                "json" => f.telemetry = true,
                other => return Err(format!("unknown telemetry format `{other}`")),
            },
            "--solve-mode" => match num("--solve-mode")?.as_str() {
                "mono" | "monolithic" => f.solve_mode = SolveMode::Monolithic,
                "decomposed" => f.solve_mode = SolveMode::Decomposed,
                other => return Err(format!("unknown solve mode `{other}`")),
            },
            "--threads" => f.threads = num("--threads")?.parse().map_err(|_| "bad --threads")?,
            "--dot" => f.dot = true,
            "--edges" => f.edges = true,
            "--stats" => f.stats = true,
            "--incremental" => f.incremental = true,
            "--snapshot-every" => {
                f.snapshot_every = num("--snapshot-every")?
                    .parse()
                    .map_err(|_| "bad --snapshot-every")?
            }
            "--kill-at" => f.kill_at = num("--kill-at")?.parse().map_err(|_| "bad --kill-at")?,
            "--torn" => f.torn = true,
            "--engine" => f.engine = EngineKind::parse(&num("--engine")?)?,
            "--repeats" => f.repeats = num("--repeats")?.parse().map_err(|_| "bad --repeats")?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(f)
}

fn parse_topo(spec: &str) -> Result<Topology, String> {
    match spec {
        "internet2" => Ok(zoo::internet2()),
        "geant" => Ok(zoo::geant()),
        "univ1" => Ok(zoo::univ1()),
        "as3679" => Ok(zoo::as3679()),
        other => {
            if let Some(k) = other.strip_prefix("fat-tree:") {
                let k: usize = k.parse().map_err(|_| "bad fat-tree arity")?;
                if k < 2 || !k.is_multiple_of(2) {
                    return Err("fat-tree arity must be even and >= 2".into());
                }
                Ok(zoo::fat_tree(k))
            } else if let Some(nd) = other.strip_prefix("jellyfish:") {
                let parts: Vec<&str> = nd.split(':').collect();
                if parts.len() != 2 {
                    return Err("jellyfish wants N:D".into());
                }
                let n: usize = parts[0].parse().map_err(|_| "bad jellyfish N")?;
                let d: usize = parts[1].parse().map_err(|_| "bad jellyfish D")?;
                if d < 2 || n <= d {
                    return Err("jellyfish needs N > D >= 2".into());
                }
                Ok(zoo::jellyfish(n, d, 0))
            } else {
                Err(format!("unknown topology `{other}`"))
            }
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (cmd, rest) = args.split_first().ok_or("missing command")?;
    match cmd.as_str() {
        "topo" => {
            let (spec, flag_args) = rest.split_first().ok_or("missing topology")?;
            let topo = parse_topo(spec)?;
            let flags = parse_flags(flag_args)?;
            if flags.dot {
                print!("{}", topo.graph.to_dot());
            } else if flags.edges {
                print!("{}", topo.graph.to_edge_list());
            } else {
                println!("{}", topo.summary());
                if flags.stats {
                    if let Some(s) = topo.graph.distance_stats() {
                        println!(
                            "diameter {} hops, mean path {:.2} hops over {} pairs",
                            s.diameter_hops, s.mean_hops, s.pairs
                        );
                    }
                    let central = topo.graph.central_nodes(3);
                    let names: Vec<String> = central
                        .iter()
                        .map(|&n| {
                            topo.graph
                                .node(n)
                                .map(|x| x.name.clone())
                                .unwrap_or_default()
                        })
                        .collect();
                    println!("most central switches: {}", names.join(", "));
                }
            }
            Ok(())
        }
        "plan" => {
            let (spec, flag_args) = rest.split_first().ok_or("missing topology")?;
            let topo = parse_topo(spec)?;
            let flags = parse_flags(flag_args)?;
            let tm = GravityModel::new(flags.load, flags.seed).base_matrix(&topo);
            let mem = make_recorder(&flags);
            let apple = Apple::plan_recorded(&topo, &tm, &flags.apple_config(), recorder_ref(&mem))
                .map_err(|e| e.to_string())?;
            println!("{}", topo.summary());
            println!(
                "classes: {}   instances: {}   cores: {}   solve: {:?}",
                apple.classes().len(),
                apple.placement().total_instances(),
                apple.placement().total_cores(),
                apple.placement().solve_time()
            );
            println!(
                "TCAM: {} tagged / {} untagged ({:.2}x reduction), cross-product {}",
                apple.program().tcam.tagged_total,
                apple.program().tcam.untagged_total,
                apple.program().tcam.reduction_ratio(),
                apple.program().tcam.cross_product_total
            );
            println!("placement:");
            for (v, nf, count) in apple.placement().q_entries() {
                let name = topo
                    .graph
                    .node(v)
                    .map(|n| n.name.clone())
                    .unwrap_or_else(|_| v.to_string());
                println!("  {name:<12} {nf:<9} x{count}");
            }
            emit_telemetry(&mem);
            Ok(())
        }
        "replay" => {
            let (spec, flag_args) = rest.split_first().ok_or("missing topology")?;
            let topo = parse_topo(spec)?;
            let flags = parse_flags(flag_args)?;
            let series = TmSeries::generate(
                &topo,
                &SeriesConfig {
                    snapshots: flags.snapshots,
                    total_mbps: flags.load,
                    ..SeriesConfig::paper(flags.seed)
                },
            );
            let mem = make_recorder(&flags);
            let out = replay_recorded(
                &topo,
                &series,
                &ReplayConfig {
                    apple: flags.apple_config(),
                    fast_failover: flags.failover,
                    ..Default::default()
                },
                recorder_ref(&mem),
            )
            .map_err(|e| e.to_string())?;
            println!(
                "{} snapshots, fast failover {}",
                flags.snapshots,
                if flags.failover { "on" } else { "off" }
            );
            println!(
                "mean loss {:.4}  peak loss {:.4}  notifications {}  helpers {}  peak extra cores {}",
                out.loss.mean(),
                out.loss.max(),
                out.notifications,
                out.helpers_spawned,
                out.peak_helper_cores
            );
            emit_telemetry(&mem);
            Ok(())
        }
        "chaos" => {
            let (spec, flag_args) = rest.split_first().ok_or("missing topology")?;
            let topo = parse_topo(spec)?;
            let flags = parse_flags(flag_args)?;
            let tm = GravityModel::new(flags.load, flags.seed).base_matrix(&topo);
            let mem = make_recorder(&flags);
            let rec = recorder_ref(&mem);
            let apple = Apple::plan_recorded(&topo, &tm, &flags.apple_config(), rec)
                .map_err(|e| e.to_string())?;
            let handler0 = apple.dynamic_handler().map_err(|e| e.to_string())?;
            let (classes, _placement, _plan, _program, orch0) = apple.into_parts();
            let mut clean = 0usize;
            let mut total_faults = 0usize;
            let mut degraded_runs = 0usize;
            for i in 0..flags.schedules {
                let seed = flags.seed.wrapping_add(i as u64);
                let mut orch = orch0.clone();
                let mut handler = handler0.clone();
                let report = run_schedule(
                    &classes,
                    &mut orch,
                    &mut handler,
                    &FaultPlanConfig::chaos(seed),
                    rec,
                );
                if report.is_clean() {
                    clean += 1;
                }
                total_faults += report.faults_injected;
                if report.degraded_ticks > 0 {
                    degraded_runs += 1;
                }
                println!(
                    "seed {seed}: {} faults  {} events  degraded ticks {}  final shed {:.3}  {}",
                    report.faults_injected,
                    report.events_applied,
                    report.degraded_ticks,
                    report.final_shed.max(0.0),
                    if report.is_clean() {
                        "clean"
                    } else {
                        "VIOLATIONS"
                    }
                );
            }
            println!(
                "{clean}/{} schedules clean, {total_faults} faults injected, {degraded_runs} runs entered degraded mode",
                flags.schedules
            );
            emit_telemetry(&mem);
            if clean == flags.schedules {
                Ok(())
            } else {
                Err("chaos run found invariant violations".into())
            }
        }
        "online" => {
            let (spec, flag_args) = rest.split_first().ok_or("missing topology")?;
            let topo = parse_topo(spec)?;
            let flags = parse_flags(flag_args)?;
            let cfg = OnlineRunConfig {
                arrivals: ArrivalConfig {
                    arrival_rate: flags.rate,
                    seed: flags.seed,
                    ..Default::default()
                },
                horizon_secs: flags.horizon,
                online: OnlineConfig {
                    resolve_every: flags.resolve_every,
                    max_churn: 64,
                    engine: EngineConfig {
                        solve_mode: flags.solve_mode,
                        threads: flags.threads,
                        ..Default::default()
                    },
                    seed: flags.seed,
                    ..Default::default()
                },
                ..Default::default()
            };
            let timeline = build_timeline(&topo, &cfg);
            let mem = make_recorder(&flags);
            let (looper, report) =
                run_timeline(&topo, &timeline, &cfg, recorder_ref(&mem), |_, _| {});
            println!(
                "{} events over {:.0}s horizon (rate {}/s per pair)",
                report.events, flags.horizon, flags.rate
            );
            println!(
                "placements {}  launches {}  retirements {}  shed events {}",
                report.placements, report.launches, report.retirements, report.shed_events
            );
            println!(
                "re-solves applied {}  repacked {}  deferred {}  peak instances {}  peak live classes {}",
                report.resolves_applied,
                report.resolves_repacked,
                report.resolves_deferred,
                report.peak_instances,
                report.peak_live_classes
            );
            println!(
                "drained: {} instances, {} shed classes remaining",
                report.final_instances, report.final_shed
            );
            looper.check_ledger()?;
            emit_telemetry(&mem);
            Ok(())
        }
        "recover" => {
            let (spec, flag_args) = rest.split_first().ok_or("missing topology")?;
            let topo = parse_topo(spec)?;
            let flags = parse_flags(flag_args)?;
            let cfg = OnlineRunConfig {
                arrivals: ArrivalConfig {
                    arrival_rate: flags.rate,
                    seed: flags.seed,
                    ..Default::default()
                },
                horizon_secs: flags.horizon,
                online: OnlineConfig {
                    resolve_every: flags.resolve_every,
                    max_churn: 64,
                    engine: EngineConfig {
                        solve_mode: flags.solve_mode,
                        threads: flags.threads,
                        ..Default::default()
                    },
                    seed: flags.seed,
                    ..Default::default()
                },
                ..Default::default()
            };
            let timeline = build_timeline(&topo, &cfg);
            let setup = RecoverySetup {
                topo: topo.clone(),
                cfg: cfg.online.clone(),
                recovery: RecoveryConfig {
                    snapshot_every: flags.snapshot_every,
                },
                host_cores: cfg.host_cores,
            };

            // Never-crashed twin: fixes the expected final state and counts
            // the durability sites the timeline visits.
            let probe = CrashPoint::never();
            let mut twin = JournaledLoop::new(
                &setup,
                SharedMemStore::new(),
                SharedFabric::new(),
                probe.clone(),
            );
            for e in timeline.events() {
                twin.step(e, &NOOP).map_err(|e| e.to_string())?;
            }
            let twin_final = encode_state(twin.inner());
            let visits = probe.visited();
            if visits == 0 {
                return Err("timeline visits no durability sites; lengthen --horizon".into());
            }
            let ordinal = if flags.kill_at == 0 {
                visits / 2 + 1
            } else {
                flags.kill_at
            };
            if ordinal > visits {
                return Err(format!(
                    "--kill-at {ordinal} exceeds the {visits} crash sites this run visits"
                ));
            }

            // Crash the controller mid-run; the store and fabric survive.
            install_quiet_kill_hook();
            let store = SharedMemStore::new();
            let fabric = SharedFabric::new();
            let crash = if flags.torn {
                CrashPoint::at_torn(ordinal, flags.seed ^ ordinal)
            } else {
                CrashPoint::at(ordinal)
            };
            let caught = catch_unwind(AssertUnwindSafe(|| {
                let mut jl = JournaledLoop::new(&setup, store.clone(), fabric.clone(), crash);
                for e in timeline.events() {
                    jl.step(e, &NOOP)
                        .expect("in-memory journal append cannot fail");
                }
            }));
            let Err(payload) = caught else {
                return Err("crash point never fired; pick a smaller --kill-at".into());
            };
            let kill =
                kill_of(payload.as_ref()).ok_or("run panicked outside the crash injector")?;
            println!(
                "killed controller at {:?} site, ordinal {} of {}{}",
                kill.site,
                kill.ordinal,
                visits,
                if flags.torn { " (torn append)" } else { "" }
            );

            let mem = make_recorder(&flags);
            let rec = recorder_ref(&mem);
            let (mut recovered, report) =
                recover(&setup, store, fabric.clone(), rec).map_err(|e| e.to_string())?;
            println!(
                "recovered from {}: {} records scanned, {} intents replayed, {} torn bytes truncated",
                report
                    .snapshot_seq
                    .map_or("genesis".to_string(), |s| format!("snapshot seq {s}")),
                report.records_scanned,
                report.records_replayed,
                report.torn_truncated_bytes
            );

            let rr = reconcile(&recovered, rec);
            println!(
                "reconciled data plane: {} ({} batches, {} rule ops)",
                if rr.was_clean {
                    "fabric already matched the recovered intent"
                } else {
                    "repaired the torn fabric"
                },
                rr.batches,
                rr.rule_ops
            );
            let prev = report
                .prev_ctx
                .as_ref()
                .ok_or("recovered loop has no compiler context")?;
            let intended = report
                .intended_ctx
                .as_ref()
                .ok_or("recovered loop has no compiler context")?;
            let conf = repair_conformance(&rr.pre_repair_fabric, prev, intended)
                .map_err(|e| e.to_string())?;
            println!(
                "repair conformance: {} probes x {} barriers = {} walks, every one old, new or a consistent chain mix",
                conf.probes, conf.barriers, conf.walks
            );

            let resume_from = recovered.seq() as usize;
            for e in &timeline.events()[resume_from..] {
                recovered.step(e, rec).map_err(|e| e.to_string())?;
            }
            if encode_state(recovered.inner()) != twin_final {
                return Err(format!(
                    "recovered+resumed state diverged from the never-crashed twin \
                     (digest {:#010x} vs {:#010x})",
                    state_digest(recovered.inner()),
                    apple_nfv::journal::crc32(&twin_final)
                ));
            }
            println!(
                "resumed {} remaining events; final state bitwise-equal to the never-crashed twin (digest {:#010x})",
                timeline.len() - resume_from,
                state_digest(recovered.inner())
            );
            recovered.inner().check_ledger()?;
            emit_telemetry(&mem);
            Ok(())
        }
        "compile" => {
            let (spec, flag_args) = rest.split_first().ok_or("missing topology")?;
            let topo = parse_topo(spec)?;
            let flags = parse_flags(flag_args)?;
            let tm = GravityModel::new(flags.load, flags.seed).base_matrix(&topo);
            let classes = ClassSet::build(
                &topo,
                &tm,
                &ClassConfig {
                    max_classes: flags.classes,
                    ..Default::default()
                },
            );
            let mut orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
            let placement = OptimizationEngine::new(EngineConfig {
                solve_mode: flags.solve_mode,
                threads: flags.threads,
                ..Default::default()
            })
            .place(&classes, &orch)
            .map_err(|e| e.to_string())?;
            let plan = SubclassPlan::derive(&classes, &placement, SplitStrategy::PrefixSplit);
            let config = RuleGenConfig::default();
            let prog = generate_with(&topo, &classes, &plan, &placement, &mut orch, &config)
                .map_err(|e| e.to_string())?;
            let snap = snapshot_of(&topo, &classes, &plan, &prog.assignment, &orch, &config)
                .map_err(|e| e.to_string())?;
            let mem = make_recorder(&flags);
            let rec = recorder_ref(&mem);
            let compiled = compile_recorded(&snap, rec);
            println!("{}", topo.summary());
            println!(
                "compiled {} sub-classes -> {} rules ({} billable TCAM) over {} switches, {} hosts, {} rewriters",
                snap.subclasses.len(),
                compiled.rule_count(),
                compiled.billable_rules(),
                compiled.switches.len(),
                compiled.hosts.len(),
                compiled.rewriters.len()
            );
            if flags.incremental {
                let mut churned = snap.clone();
                let fresh = snap
                    .subclasses
                    .iter()
                    .flat_map(|s| s.instances.iter())
                    .map(|i| i.0)
                    .max()
                    .ok_or("snapshot has no instances to churn")?
                    + 1;
                churned.subclasses[0].instances[0] = InstanceId(fresh);
                let target = compile_recorded(&churned, rec);
                let update = diff_recorded(&compiled, &target, rec);
                let full_ops = target.rule_count();
                let inc_ops = update.op_count().max(1);
                println!("single-sub-class churn step: {}", update.stats());
                println!(
                    "full recompile would reinstall {} rules -> incremental is {:.1}x cheaper",
                    full_ops,
                    full_ops as f64 / inc_ops as f64
                );
            }
            emit_telemetry(&mem);
            Ok(())
        }
        "walk" => {
            let (spec, flag_args) = rest.split_first().ok_or("missing topology")?;
            let topo = parse_topo(spec)?;
            let flags = parse_flags(flag_args)?;
            let tm = GravityModel::new(flags.load, flags.seed).base_matrix(&topo);
            let classes = ClassSet::build(
                &topo,
                &tm,
                &ClassConfig {
                    max_classes: flags.classes,
                    ..Default::default()
                },
            );
            let mut orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
            let placement = OptimizationEngine::new(EngineConfig {
                solve_mode: flags.solve_mode,
                threads: flags.threads,
                ..Default::default()
            })
            .place(&classes, &orch)
            .map_err(|e| e.to_string())?;
            let plan = SubclassPlan::derive(&classes, &placement, SplitStrategy::PrefixSplit);
            let config = RuleGenConfig::default();
            let prog = generate_with(&topo, &classes, &plan, &placement, &mut orch, &config)
                .map_err(|e| e.to_string())?;
            let snap = snapshot_of(&topo, &classes, &plan, &prog.assignment, &orch, &config)
                .map_err(|e| e.to_string())?;
            let program = compile_recorded(&snap, &NOOP);
            let probes = conformance_probes(&snap, &snap);
            if probes.is_empty() {
                return Err("deployment produced no packet probes".into());
            }
            let jobs: Vec<_> = probes.iter().map(|pr| (pr.packet, &pr.path)).collect();
            let walker = program.walker();
            let compiled = CompiledProgram::new(&program);
            let engine: &(dyn WalkEngine + Sync) = match flags.engine {
                EngineKind::Linear => &walker,
                EngineKind::Compiled => &compiled,
            };
            let repeats = flags.repeats.max(1);
            let mut errors = 0usize;
            let mut instances = 0usize;
            let start = std::time::Instant::now();
            for _ in 0..repeats {
                for res in walk_batch(engine, &jobs, flags.threads) {
                    match res {
                        Ok(rec) => instances += rec.instances.len(),
                        Err(_) => errors += 1,
                    }
                }
            }
            let secs = start.elapsed().as_secs_f64();
            let walks = repeats * jobs.len();
            println!("{}", topo.summary());
            println!(
                "engine {}  {} probes x {} repeats = {} walks ({} VNF traversals)",
                flags.engine.name(),
                jobs.len(),
                repeats,
                walks,
                instances
            );
            println!(
                "{:.3}s wall  {:.0} walks/sec  threads {}",
                secs,
                walks as f64 / secs.max(1e-9),
                flags.threads
            );
            if errors > 0 {
                return Err(format!("{errors} probe walks failed"));
            }
            Ok(())
        }
        "southbound" => {
            let (spec, flag_args) = rest.split_first().ok_or("missing topology")?;
            let topo = parse_topo(spec)?;
            let flags = parse_flags(flag_args)?;
            let tm = GravityModel::new(flags.load, flags.seed).base_matrix(&topo);
            let classes = ClassSet::build(
                &topo,
                &tm,
                &ClassConfig {
                    max_classes: flags.classes,
                    ..Default::default()
                },
            );
            let mut orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
            let placement = OptimizationEngine::new(EngineConfig {
                solve_mode: flags.solve_mode,
                threads: flags.threads,
                ..Default::default()
            })
            .place(&classes, &orch)
            .map_err(|e| e.to_string())?;
            let plan = SubclassPlan::derive(&classes, &placement, SplitStrategy::PrefixSplit);
            let config = RuleGenConfig::default();
            let prog = generate_with(&topo, &classes, &plan, &placement, &mut orch, &config)
                .map_err(|e| e.to_string())?;
            let snap = snapshot_of(&topo, &classes, &plan, &prog.assignment, &orch, &config)
                .map_err(|e| e.to_string())?;
            // The same single-sub-class churn step `compile --incremental`
            // models: one chain stage re-served by a fresh instance.
            let mut churned = snap.clone();
            let fresh = snap
                .subclasses
                .iter()
                .flat_map(|s| s.instances.iter())
                .map(|i| i.0)
                .max()
                .ok_or("snapshot has no instances to churn")?
                + 1;
            churned.subclasses[0].instances[0] = InstanceId(fresh);
            let cfg = InflightConfig {
                engine: WalkEngineConfig {
                    engine: flags.engine,
                    threads: flags.threads,
                },
                southbound: SouthboundConfig::paper(flags.seed),
                tick_ms: 10,
            };
            let report = inflight_conformance(&snap, &churned, &cfg)
                .map_err(|e| format!("in-flight conformance violated: {e}"))?;
            println!("{}", topo.summary());
            println!(
                "channel: {} ms/rule (+{} ms jitter), reorder window {}, seed {}",
                cfg.southbound.rule_install_ms,
                cfg.southbound.jitter_ms,
                cfg.southbound.reorder_window,
                cfg.southbound.seed,
            );
            println!(
                "churn plan drained in {} virtual ms across {} barriers ({} retries)",
                report.elapsed_ms, report.barriers, report.retries,
            );
            println!(
                "in-flight battery: {} ticks x {} probes = {} walks, all conformant",
                report.ticks, report.probes, report.walks,
            );
            println!(
                "  {} bitwise-old, {} bitwise-new, {} chain-consistent mixes",
                report.old_exact, report.new_exact, report.mixed,
            );
            Ok(())
        }
        "export-lp" => {
            let (spec, flag_args) = rest.split_first().ok_or("missing topology")?;
            let topo = parse_topo(spec)?;
            let flags = parse_flags(flag_args)?;
            let tm = GravityModel::new(flags.load, flags.seed).base_matrix(&topo);
            let classes = ClassSet::build(
                &topo,
                &tm,
                &ClassConfig {
                    max_classes: flags.classes,
                    ..Default::default()
                },
            );
            let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
            let engine = OptimizationEngine::new(Default::default());
            print!("{}", engine.export_lp(&classes, &orch));
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
