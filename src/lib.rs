//! Facade crate re-exporting the whole APPLE reproduction workspace.
//!
//! APPLE (Li & Qian, ICDCS 2016) is an SDN-based NFV orchestration framework
//! that enforces network-function policy chains without changing flow
//! forwarding paths (interference freedom) while keeping every VNF instance
//! in its own VM (isolation). This crate simply re-exports the workspace
//! members so examples and integration tests can depend on one name.
//!
//! # Example
//!
//! ```
//! use apple_nfv::topology::zoo;
//!
//! let topo = zoo::internet2();
//! assert_eq!(topo.graph.node_count(), 12);
//! ```

pub use apple_core as core;
pub use apple_dataplane as dataplane;
pub use apple_faults as faults;
pub use apple_journal as journal;
pub use apple_lp as lp;
pub use apple_nf as nf;
pub use apple_rng as rng;
pub use apple_sim as sim;
pub use apple_telemetry as telemetry;
pub use apple_topology as topology;
pub use apple_traffic as traffic;

/// One-line import of the types most programs need.
///
/// ```
/// use apple_nfv::prelude::*;
///
/// let topo = zoo::internet2();
/// let tm = GravityModel::new(1_000.0, 0).base_matrix(&topo);
/// let apple = Apple::plan(&topo, &tm, &AppleConfig::default()).unwrap();
/// assert!(apple.placement().total_instances() > 0);
/// ```
pub mod prelude {
    pub use apple_core::classes::{ClassConfig, ClassSet, EquivalenceClass};
    pub use apple_core::controller::{Apple, AppleConfig};
    pub use apple_core::engine::{EngineConfig, OptimizationEngine, Placement};
    pub use apple_core::orchestrator::ResourceOrchestrator;
    pub use apple_core::policy::PolicyChain;
    pub use apple_core::policy_spec::PolicySpec;
    pub use apple_core::subclass::{SplitStrategy, SubclassPlan};
    pub use apple_faults::{FaultInjector, FaultPlan, FaultPlanConfig, NoFaults, RetryPolicy};
    pub use apple_nf::{NfType, VnfSpec};
    pub use apple_telemetry::{MemoryRecorder, Recorder, RecorderExt, Snapshot, NOOP};
    pub use apple_topology::{zoo, NodeId, Path, Topology, TopologyKind};
    pub use apple_traffic::{GravityModel, SeriesConfig, TmSeries, TrafficMatrix};
}
