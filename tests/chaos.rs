//! Chaos suite: replay hundreds of seeded fault schedules through
//! place → tag → fault → failover and assert the runtime invariants after
//! every event — interference freedom (every live sub-class stage on an
//! existing, correctly-typed instance on the class's own path, in chain
//! order) and full traffic accounting (live coverage plus the explicit
//! shed ledger sums to 100% per class). No schedule may panic.
//!
//! The deployment is planned once per topology and cloned per schedule,
//! so the suite scales to hundreds of seeds without re-running the LP.

use apple_nfv::core::classes::{ClassConfig, ClassId, ClassSet};
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::core::failover::DynamicHandler;
use apple_nfv::core::online::{OnlineConfig, OrchestrationLoop};
use apple_nfv::core::orchestrator::{ControlOps, ResourceOrchestrator};
use apple_nfv::core::verify::verify_shares;
use apple_nfv::faults::FaultPlanConfig;
use apple_nfv::sim::chaos::run_schedule;
use apple_nfv::telemetry::{MemoryRecorder, NOOP};
use apple_nfv::topology::{zoo, NodeId, Topology};
use apple_nfv::traffic::arrivals::{ArrivalConfig, EventTimeline};
use apple_nfv::traffic::GravityModel;
use std::collections::BTreeMap;

/// Base seed for this file (see tests/README.md).
const SEED: u64 = 0xc4a0_57a7;

/// Base seeds × schedules per seed — 200 schedules total.
const BASE_SEEDS: usize = 8;
const SCHEDULES_PER_SEED: usize = 25;

fn planned(topo: &Topology, seed: u64) -> (ClassSet, ResourceOrchestrator, DynamicHandler) {
    let tm = GravityModel::new(3_000.0, seed).base_matrix(topo);
    let cfg = AppleConfig {
        classes: ClassConfig {
            max_classes: 12,
            ..Default::default()
        },
        ..Default::default()
    };
    let apple = Apple::plan(topo, &tm, &cfg).expect("plan");
    let handler = apple.dynamic_handler().expect("bootstrap");
    let (classes, _placement, _plan, _program, orch) = apple.into_parts();
    (classes, orch, handler)
}

fn rates_of(classes: &ClassSet) -> BTreeMap<ClassId, f64> {
    classes.iter().map(|c| (c.id, c.rate_mbps)).collect()
}

/// The headline sweep: 8 base seeds × 25 schedules = 200 seeded fault
/// schedules against one planned internet2 deployment, every one of them
/// clean after every event.
#[test]
fn two_hundred_seeded_schedules_stay_clean() {
    let topo = zoo::internet2();
    let (classes, orch0, handler0) = planned(&topo, SEED);
    let mut total_faults = 0usize;
    let mut degraded_runs = 0usize;
    for base in 0..BASE_SEEDS {
        for case in 0..SCHEDULES_PER_SEED {
            let seed = SEED ^ (0x100 * base as u64 + case as u64);
            let mut orch = orch0.clone();
            let mut handler = handler0.clone();
            let report = run_schedule(
                &classes,
                &mut orch,
                &mut handler,
                &FaultPlanConfig::chaos(seed),
                &NOOP,
            );
            assert!(
                report.is_clean(),
                "base {base} case {case} (seed {seed}): violations {:?}",
                report.violations
            );
            total_faults += report.faults_injected;
            if report.degraded_ticks > 0 {
                degraded_runs += 1;
            }
        }
    }
    assert!(
        total_faults >= BASE_SEEDS * SCHEDULES_PER_SEED,
        "sweep was too gentle: only {total_faults} faults across 200 schedules"
    );
    // The sweep must exercise the degraded path somewhere, or the
    // shed-ledger accounting is never actually tested.
    assert!(degraded_runs > 0, "no schedule entered degraded mode");
}

/// Chaos must stay clean on every evaluation topology, not just the one
/// the sweep uses.
#[test]
fn chaos_stays_clean_across_topologies() {
    for (i, topo) in [zoo::internet2(), zoo::geant(), zoo::univ1()]
        .iter()
        .enumerate()
    {
        let (classes, orch0, handler0) = planned(topo, SEED ^ (0x1000 + i as u64));
        for case in 0..4u64 {
            let mut orch = orch0.clone();
            let mut handler = handler0.clone();
            let report = run_schedule(
                &classes,
                &mut orch,
                &mut handler,
                &FaultPlanConfig::chaos(SEED ^ (0x2000 + 0x10 * i as u64 + case)),
                &NOOP,
            );
            assert!(
                report.is_clean(),
                "topology {i} case {case}: violations {:?}",
                report.violations
            );
        }
    }
}

/// Identical seed → identical schedule outcome, byte for byte.
#[test]
fn schedule_outcome_is_deterministic_per_seed() {
    let topo = zoo::internet2();
    let (classes, orch0, handler0) = planned(&topo, SEED);
    for case in 0..4u64 {
        let cfg = FaultPlanConfig::chaos(SEED ^ (0x3000 + case));
        let run = || {
            let mut orch = orch0.clone();
            let mut handler = handler0.clone();
            run_schedule(&classes, &mut orch, &mut handler, &cfg, &NOOP)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.events_applied, b.events_applied, "case {case}");
        assert_eq!(a.faults_injected, b.faults_injected, "case {case}");
        assert_eq!(a.degraded_ticks, b.degraded_ticks, "case {case}");
        assert!((a.final_shed - b.final_shed).abs() < 1e-12, "case {case}");
        assert_eq!(a.final_degraded, b.final_degraded, "case {case}");
    }
}

/// A hostile schedule — every boot and rule install fails — must still
/// keep the books: parked traffic lands in the shed ledger (no silent
/// loss), and once operations turn reliable again the handler restores
/// every parked sub-class and leaves degraded mode.
#[test]
fn hostile_schedule_degrades_cleanly_then_recovers() {
    let topo = zoo::internet2();
    let (classes, mut orch, mut handler) = planned(&topo, SEED ^ 0x4000);
    let rates = rates_of(&classes);
    let hostile = FaultPlanConfig {
        boot_fail_prob: 1.0,
        rule_fail_prob: 1.0,
        host_failures: 0,
        ..FaultPlanConfig::chaos(SEED ^ 0x4000)
    };
    let report = run_schedule(&classes, &mut orch, &mut handler, &hostile, &NOOP);
    assert!(
        report.is_clean(),
        "hostile schedule broke invariants: {:?}",
        report.violations
    );
    assert!(
        handler.is_degraded(),
        "all control operations failing must force degraded mode"
    );
    assert!(handler.total_shed() > 0.0);

    // Capacity and control-plane health return: recovery drains the ledger.
    let mut reliable = ControlOps::reliable(SEED ^ 0x4000);
    let restored = handler
        .recover_degraded(&rates, &classes, &mut orch, &mut reliable, &NOOP)
        .expect("recovery must not error");
    assert!(restored > 0, "nothing restored after faults cleared");
    assert!(!handler.is_degraded(), "ledger should be empty again");
    assert!(handler.total_shed().abs() < 1e-9);
    assert!(
        verify_shares(&classes, &handler, &orch, 1e-6).is_empty(),
        "post-recovery state must verify clean"
    );
}

/// The fault-path telemetry counters land in the snapshot (and therefore
/// in `apple --telemetry json`): retry/boot-failure counts from the
/// orchestrator, re-homed sub-classes from crash handling, and the
/// degraded-mode entry/exit markers.
#[test]
fn chaos_telemetry_counters_reach_the_snapshot() {
    let topo = zoo::internet2();
    let (classes, orch0, handler0) = planned(&topo, SEED);
    let rec = MemoryRecorder::new();

    // Phase 1: ordinary chaos schedules -> successful re-homing.
    for case in 0..4u64 {
        let mut orch = orch0.clone();
        let mut handler = handler0.clone();
        run_schedule(
            &classes,
            &mut orch,
            &mut handler,
            &FaultPlanConfig::chaos(SEED ^ (0x5000 + case)),
            &rec,
        );
    }

    // Phase 2: a hostile schedule forces degraded mode, then reliable
    // operations force the exit marker.
    let (mut orch, mut handler) = (orch0.clone(), handler0.clone());
    let hostile = FaultPlanConfig {
        boot_fail_prob: 1.0,
        rule_fail_prob: 1.0,
        host_failures: 0,
        ..FaultPlanConfig::chaos(SEED ^ 0x6000)
    };
    run_schedule(&classes, &mut orch, &mut handler, &hostile, &rec);
    let mut reliable = ControlOps::reliable(SEED ^ 0x6000);
    let rates = rates_of(&classes);
    handler
        .recover_degraded(&rates, &classes, &mut orch, &mut reliable, &rec)
        .expect("recovery");

    let snap = rec.snapshot();
    for counter in [
        "orchestrator.retries",
        "orchestrator.boot_failures",
        "failover.rehomed_subclasses",
        "failover.degraded_entered",
        "failover.degraded_exited",
    ] {
        let n = snap.counter(counter);
        assert!(
            n.is_some_and(|n| n > 0),
            "counter {counter} missing from snapshot (got {n:?})"
        );
        assert!(
            snap.to_json().contains(&format!("\"{counter}\"")),
            "counter {counter} missing from JSON rendering"
        );
    }
}

/// Instance crashes injected while the *online* loop is churning through
/// an arrival/departure timeline: after every crash the residual-capacity
/// ledger must still sum to orchestrator truth, the placement snapshot
/// must verify clean, and the coverage books must balance — every Mbps
/// the aggregate is offering is either served by a live class or sitting
/// in the explicit shed ledger, never silently lost.
#[test]
fn online_churn_with_crashes_keeps_shed_and_coverage_balanced() {
    let topo = zoo::internet2();
    let mut pairs = Vec::new();
    for s in 0..4 {
        for d in 4..7 {
            pairs.push((NodeId(s), NodeId(d)));
        }
    }
    let timeline = EventTimeline::generate(
        &pairs,
        &ArrivalConfig {
            arrival_rate: 1.0,
            mean_duration_secs: 8.0,
            mean_rate_mbps: 12.0,
            seed: SEED ^ 0x7000,
        },
        16.0,
    );
    let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
    let mut looper = OrchestrationLoop::new(
        &topo,
        orch,
        OnlineConfig {
            resolve_every: 120,
            max_churn: 64,
            seed: SEED ^ 0x7000,
            ..Default::default()
        },
    );
    let rec = MemoryRecorder::new();
    let mut crashes = 0usize;
    for (n, event) in timeline.events().iter().enumerate() {
        looper.step(event, &rec);
        // Crash the most-loaded instance every 25 events, mid-churn.
        if n % 25 == 24 {
            let victim = looper
                .placer()
                .loads()
                .iter()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(&id, _)| id);
            if let Some(id) = victim {
                looper.handle_instance_crash(id, &rec);
                crashes += 1;
            }
        }
        looper
            .check_ledger()
            .unwrap_or_else(|e| panic!("event {n}: ledger untrue: {e}"));
        let offered = looper.incremental().total_rate_mbps();
        let covered = looper.total_live_rate_mbps() + looper.total_shed_rate_mbps();
        assert!(
            (offered - covered).abs() < 1e-6,
            "event {n}: offered {offered} != live+shed {covered}"
        );
        let (classes, handler) = looper.snapshot();
        let violations = verify_shares(&classes, &handler, looper.orchestrator(), 1e-6);
        assert!(violations.is_empty(), "event {n}: {violations:?}");
    }
    assert!(crashes > 0, "schedule never crashed an instance");
    assert!(
        rec.snapshot()
            .counter("online.instance_crashes")
            .unwrap_or(0)
            >= crashes as u64,
        "crash telemetry missing"
    );
    assert_eq!(looper.live_count(), 0, "timeline must drain");
    assert_eq!(looper.instance_count(), 0, "instances must all retire");
}
