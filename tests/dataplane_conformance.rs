//! Packet-level differential conformance battery for the incremental
//! data-plane rule compiler (DESIGN.md §10).
//!
//! Every case builds two [`CompilerSnapshot`]s of the same deployment —
//! before and after a structured mutation (instance churn, sub-class
//! departure, crash-driven online re-placement) — and runs
//! [`differential_conformance`]: replay a probe packet per sub-class
//! prefix at **every** intermediate barrier of the incremental update
//! plan, requiring each walk to be bitwise-old, bitwise-new, or a
//! chain-consistent mix, and the final patched program to equal the full
//! recompile rule-for-rule.
//!
//! Cases span seeds × three evaluation topologies (Internet2, GEANT,
//! UNIV1), both mutation directions (the diff is not symmetric: growth
//! exercises the additive phases, shrinkage the subtractive ones), and an
//! online crash/churn interleaving. Pinned-seed regressions at the bottom
//! freeze exact report counts so a quiet change in barrier structure
//! shows up as a diff, not a silent pass.

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::engine::{EngineConfig, OptimizationEngine};
use apple_nfv::core::online::{OnlineConfig, OrchestrationLoop};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::core::rules::{generate_with, snapshot_of, RuleGenConfig};
use apple_nfv::core::subclass::{SplitStrategy, SubclassPlan};
use apple_nfv::dataplane::compiler::CompilerSnapshot;
use apple_nfv::nf::InstanceId;
use apple_nfv::sim::{differential_conformance, ConformanceReport};
use apple_nfv::telemetry::NOOP;
use apple_nfv::topology::{zoo, NodeId, Topology};
use apple_nfv::traffic::arrivals::{ArrivalConfig, EventTimeline, FlowEventKind};
use apple_nfv::traffic::GravityModel;
use apple_rng::{Rng, SeedableRng, StdRng};

/// Base seed for this file; each case perturbs it by its index.
const SEED: u64 = 0xc04f_041a;

/// Plans a deployment offline and lowers it into a compiler snapshot.
fn offline_snapshot(topo: &Topology, tm_seed: u64, max_classes: usize) -> CompilerSnapshot {
    let tm = GravityModel::new(1_800.0, tm_seed).base_matrix(topo);
    let classes = ClassSet::build(
        topo,
        &tm,
        &ClassConfig {
            max_classes,
            ..Default::default()
        },
    );
    let mut orch = ResourceOrchestrator::with_uniform_hosts(topo, 64);
    let placement = OptimizationEngine::new(EngineConfig::default())
        .place(&classes, &orch)
        .expect("pinned conformance seeds are feasible");
    let plan = SubclassPlan::derive(&classes, &placement, SplitStrategy::PrefixSplit);
    let config = RuleGenConfig::default();
    let prog = generate_with(topo, &classes, &plan, &placement, &mut orch, &config)
        .expect("rule generation succeeds on a feasible placement");
    snapshot_of(topo, &classes, &plan, &prog.assignment, &orch, &config)
        .expect("snapshot lowering succeeds")
}

/// Instance churn: one chain stage of one sub-class re-served by a fresh
/// instance (same NF type — the stage keeps its `stage_nfs` entry).
fn churn_instance(snap: &CompilerSnapshot, rng: &mut StdRng) -> CompilerSnapshot {
    let mut out = snap.clone();
    let fresh = out
        .subclasses
        .iter()
        .flat_map(|s| s.instances.iter())
        .map(|i| i.0)
        .max()
        .map_or(0, |m| m + 1);
    // Rotate over sub-classes until one with a non-empty chain is found.
    let total = out.subclasses.len();
    let start = rng.gen_range(0..total);
    for off in 0..total {
        let s = &mut out.subclasses[(start + off) % total];
        if !s.instances.is_empty() {
            let j = rng.gen_range(0..s.instances.len());
            s.instances[j] = InstanceId(fresh);
            return out;
        }
    }
    panic!("deployment has no sub-class with instances to churn");
}

/// Sub-class departure: one sub-class's slice of traffic stops being
/// enforced (its classification, stage and exit rules must all unwind).
fn drop_subclass(snap: &CompilerSnapshot, rng: &mut StdRng) -> CompilerSnapshot {
    let mut out = snap.clone();
    let k = rng.gen_range(0..out.subclasses.len());
    out.subclasses.remove(k);
    out
}

/// A conformance report is internally consistent: every walk at every
/// barrier was classified exactly once.
fn assert_accounted(report: &ConformanceReport, ctx: &str) {
    assert_eq!(
        report.walks,
        report.old_exact + report.new_exact + report.mixed,
        "{ctx}: walk accounting leak"
    );
    assert_eq!(
        report.walks,
        report.barriers * report.probes,
        "{ctx}: barriers x probes mismatch"
    );
}

/// The tentpole battery: seeds × three topologies × two structured
/// mutations, both directions each.
#[test]
fn structured_mutations_conform_across_topologies() {
    for (t, topo) in [zoo::internet2(), zoo::geant(), zoo::univ1()]
        .iter()
        .enumerate()
    {
        for case in 0..2u64 {
            let mut rng = StdRng::seed_from_u64(SEED ^ (0x10 * t as u64 + case));
            let base = offline_snapshot(topo, 300 + case, 8);
            let churned = churn_instance(&base, &mut rng);
            let shrunk = drop_subclass(&base, &mut rng);
            for (label, old, new) in [
                ("churn fwd", &base, &churned),
                ("churn rev", &churned, &base),
                ("drop fwd", &base, &shrunk),
                ("drop rev", &shrunk, &base),
            ] {
                let ctx = format!("topology {t} case {case} {label}");
                let report =
                    differential_conformance(old, new).unwrap_or_else(|e| panic!("{ctx}: {e}"));
                assert_accounted(&report, &ctx);
                assert!(report.barriers > 0, "{ctx}: mutation produced no plan");
                assert!(report.new_exact > 0, "{ctx}: no probe reached new state");
            }
        }
    }
}

/// A no-op mutation diffs to an empty plan: zero barriers, nothing to
/// conform, and the identity report proves the battery is not vacuous.
#[test]
fn identity_snapshots_have_no_barriers() {
    let topo = zoo::internet2();
    let snap = offline_snapshot(&topo, 300, 8);
    let report = differential_conformance(&snap, &snap).expect("identity conforms");
    assert_eq!(report.barriers, 0);
    assert_eq!(report.walks, 0);
    assert!(report.probes > 0, "probe generation must not be empty");
}

/// Online crash/churn interleaving: stream a seeded timeline through the
/// loop with the incremental compiler on, crash a live instance partway,
/// and check conformance between every pair of consecutive post-sync
/// snapshots the loop served.
#[test]
fn online_crash_interleavings_conform() {
    let topo = zoo::internet2();
    let pairs: Vec<(NodeId, NodeId)> = (0..4)
        .flat_map(|s| (4..7).map(move |d| (NodeId(s), NodeId(d))))
        .collect();
    for case in 0..2u64 {
        let arrivals = ArrivalConfig {
            arrival_rate: 1.0,
            mean_duration_secs: 8.0,
            mean_rate_mbps: 10.0,
            seed: SEED ^ (0x100 + case),
        };
        let timeline = EventTimeline::generate(&pairs, &arrivals, 14.0);
        assert!(!timeline.is_empty(), "case {case}: no events");
        let cfg = OnlineConfig {
            class_cfg: ClassConfig::default(),
            resolve_every: 150,
            max_churn: 64,
            compile_rules: true,
            ..Default::default()
        };
        let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
        let mut looper = OrchestrationLoop::new(&topo, orch, cfg);
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x200 + case));
        // Crash a live instance at two interior points of the timeline.
        let crash_at: Vec<usize> = vec![timeline.len() / 3, 2 * timeline.len() / 3];
        let mut prev = looper
            .dataplane_snapshot()
            .expect("compiler enabled by config");
        let mut synced = 0u64;
        for (n, event) in timeline.events().iter().enumerate() {
            let step = looper.step(event, &NOOP);
            if crash_at.contains(&n) {
                let live: Vec<InstanceId> =
                    looper.orchestrator().instances().map(|i| i.id()).collect();
                if !live.is_empty() {
                    let victim = live[rng.gen_range(0..live.len())];
                    looper.handle_instance_crash(victim, &NOOP);
                }
            }
            if step.dataplane_ops == 0 && !matches!(event.kind, FlowEventKind::Departure) {
                continue;
            }
            let next = looper.dataplane_snapshot().expect("compiler stays on");
            let ctx = format!("case {case} event {n}");
            let report =
                differential_conformance(&prev, &next).unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_accounted(&report, &ctx);
            synced += report.barriers as u64;
            prev = next;
        }
        assert!(synced > 0, "case {case}: timeline never changed the rules");
        assert_eq!(
            looper
                .dataplane_program()
                .expect("compiler stays on")
                .billable_rules(),
            0,
            "case {case}: drained timeline left billable rules installed"
        );
    }
}

/// Pinned-seed regression: exact report counts for one frozen
/// Internet2 churn step. A change in probe generation, barrier phasing or
/// walk classification moves these numbers and must be reviewed, not
/// silently absorbed.
#[test]
fn pinned_seed_regression_counts() {
    let topo = zoo::internet2();
    let mut rng = StdRng::seed_from_u64(SEED);
    let base = offline_snapshot(&topo, 300, 8);
    let churned = churn_instance(&base, &mut rng);
    let fwd = differential_conformance(&base, &churned).expect("pinned churn conforms");
    let rev = differential_conformance(&churned, &base).expect("pinned reverse conforms");
    assert_accounted(&fwd, "pinned fwd");
    assert_accounted(&rev, "pinned rev");
    // Frozen by SEED and the tm seed: update deliberately when the
    // compiler's barrier structure changes.
    assert_eq!((fwd.barriers, fwd.probes), (rev.barriers, rev.probes));
    assert_eq!(fwd, rev, "churn conformance must be direction-symmetric");
    let snap = format!(
        "barriers={} probes={} walks={} old={} new={} mixed={}",
        fwd.barriers, fwd.probes, fwd.walks, fwd.old_exact, fwd.new_exact, fwd.mixed
    );
    assert_eq!(
        snap, "barriers=3 probes=16 walks=48 old=1 new=47 mixed=0",
        "pinned conformance counts moved"
    );
}
