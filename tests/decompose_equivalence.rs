//! Seeded equivalence suite: the decomposed placement solve must be
//! observationally identical to the monolithic one (DESIGN.md §8).
//!
//! For every scenario the full pipeline runs twice — once with
//! `SolveMode::Monolithic`, once with `SolveMode::Decomposed` — and the
//! results are compared on three axes:
//!
//! * the **LP objective** of the final relaxation (within 1e-9),
//! * the **rounded placement**: every `(switch, NF, count)` entry,
//! * the **runtime invariants**: the bootstrapped Dynamic Handler state
//!   passes `verify_shares` (interference freedom + traffic accounting)
//!   in both modes.
//!
//! Thread counts 1, 2 and 8 are all exercised: the merge is deterministic
//! by block index, so worker scheduling must never show through.
//!
//! Scenarios are deliberately small (debug-mode LP solves; the committed
//! BENCH files cover the large topologies in release mode).

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::core::engine::{EngineConfig, SolveMode};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::core::verify::verify_shares;
use apple_nfv::nf::NfType;
use apple_nfv::topology::{NodeId, Topology, TopologyKind};
use apple_nfv::traffic::GravityModel;

fn config(max_classes: usize, mode: SolveMode, threads: usize) -> AppleConfig {
    AppleConfig {
        classes: ClassConfig {
            max_classes,
            ..Default::default()
        },
        engine: EngineConfig {
            solve_mode: mode,
            threads,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Plans `topo` in the given mode and returns the comparison axes:
/// rounded placement entries, LP objective, instance count, and whether
/// the bootstrapped handler state verifies clean.
fn plan(
    topo: &Topology,
    load: f64,
    seed: u64,
    max_classes: usize,
    mode: SolveMode,
    threads: usize,
) -> (Vec<(NodeId, NfType, u32)>, f64, u32, bool) {
    let tm = GravityModel::new(load, seed).base_matrix(topo);
    let apple = Apple::plan(topo, &tm, &config(max_classes, mode, threads)).expect("plan");
    let handler = apple.dynamic_handler().expect("bootstrap");
    let entries: Vec<_> = apple.placement().q_entries().collect();
    let lp = apple.placement().lp_objective();
    let instances = apple.placement().total_instances();
    let (classes, _placement, _plan, _program, orch) = apple.into_parts();
    let clean = verify_shares(&classes, &handler, &orch, 1e-6).is_empty();
    (entries, lp, instances, clean)
}

fn assert_equivalent(topo: &Topology, load: f64, seed: u64, max_classes: usize, threads: usize) {
    let (q_m, lp_m, inst_m, clean_m) =
        plan(topo, load, seed, max_classes, SolveMode::Monolithic, 0);
    let (q_d, lp_d, inst_d, clean_d) = plan(
        topo,
        load,
        seed,
        max_classes,
        SolveMode::Decomposed,
        threads,
    );
    assert!(
        (lp_m - lp_d).abs() < 1e-9,
        "seed {seed} threads {threads}: LP objective diverged ({lp_m} vs {lp_d})"
    );
    assert_eq!(
        q_m, q_d,
        "seed {seed} threads {threads}: rounded placement diverged"
    );
    assert_eq!(inst_m, inst_d, "seed {seed} threads {threads}: instances");
    assert!(clean_m, "seed {seed}: monolithic plan failed verify_shares");
    assert!(
        clean_d,
        "seed {seed} threads {threads}: decomposed plan failed verify_shares"
    );
}

#[test]
fn internet2_equivalent_across_seeds() {
    let topo = TopologyKind::Internet2.build();
    for seed in [0, 7, 23] {
        assert_equivalent(&topo, 3_000.0, seed, 10, 1);
    }
}

#[test]
fn internet2_equivalent_across_thread_counts() {
    let topo = TopologyKind::Internet2.build();
    for threads in [1, 2, 8] {
        assert_equivalent(&topo, 3_000.0, 5, 10, threads);
    }
}

#[test]
fn synthetic_equivalent_across_seeds_and_threads() {
    let topo = TopologyKind::Synthetic.build();
    for (seed, threads) in [(0, 1), (1, 2), (2, 8)] {
        assert_equivalent(&topo, 1_000.0, seed, 8, threads);
    }
}

#[test]
fn univ1_equivalent_in_the_elephant_flow_regime() {
    // Per-class rates exceed instance capacity here, exercising the
    // repair-round path (extra_caps) in both modes.
    let topo = TopologyKind::Univ1.build();
    assert_equivalent(&topo, 9_000.0, 0, 8, 2);
}

#[test]
fn decomposed_handles_a_down_host_like_monolithic() {
    use apple_nfv::core::engine::OptimizationEngine;

    let topo = TopologyKind::Internet2.build();
    let tm = GravityModel::new(3_000.0, 11).base_matrix(&topo);
    let classes = ClassSet::build(
        &topo,
        &tm,
        &ClassConfig {
            max_classes: 8,
            ..Default::default()
        },
    );
    let mut orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
    let probe = OptimizationEngine::new(EngineConfig::default())
        .place(&classes, &orch)
        .expect("probe plan");
    let busy = probe.q_entries().next().expect("nonempty plan").0;
    orch.fail_host(busy).expect("host up");
    let mono = OptimizationEngine::new(EngineConfig::default())
        .place(&classes, &orch)
        .expect("mono plan");
    let dec = OptimizationEngine::new(EngineConfig {
        solve_mode: SolveMode::Decomposed,
        threads: 2,
        ..Default::default()
    })
    .place(&classes, &orch)
    .expect("decomposed plan");
    let q_m: Vec<_> = mono.q_entries().collect();
    let q_d: Vec<_> = dec.q_entries().collect();
    assert_eq!(q_m, q_d, "placement diverged with a host down");
    assert!(q_d.iter().all(|&(v, _, _)| v != busy), "used a down host");
}
