//! End-to-end integration: the full APPLE pipeline on every evaluation
//! topology, exercising each Fig. 1 component in sequence and checking the
//! cross-component contracts.

use apple_nfv::core::baselines::{ingress_per_class, TrafficSteering};
use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::core::engine::{EngineConfig, OptimizationEngine};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::core::subclass::{SplitStrategy, SubclassPlan};
use apple_nfv::dataplane::packet::{HostTag, Packet};
use apple_nfv::nf::NfType;
use apple_nfv::topology::TopologyKind;
use apple_nfv::traffic::{GravityModel, SeriesConfig, TmSeries};

fn small_config() -> AppleConfig {
    AppleConfig {
        classes: ClassConfig {
            max_classes: 15,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn full_pipeline_on_all_four_topologies() {
    for kind in TopologyKind::all() {
        let topo = kind.build();
        let tm = GravityModel::new(1_500.0, 3).base_matrix(&topo);
        let apple = Apple::plan(&topo, &tm, &small_config())
            .unwrap_or_else(|e| panic!("{kind}: planning failed: {e}"));
        assert!(
            apple.placement().total_instances() > 0,
            "{kind}: no instances"
        );
        assert_eq!(
            apple.orchestrator().instance_count() as u32,
            apple.placement().total_instances(),
            "{kind}: orchestrator out of sync with placement"
        );
        // Every class is walkable and policy-complete.
        for class in apple.classes() {
            let p = Packet::new(class.src_prefix.0 | 9, class.dst_prefix.0 | 9, 1, 80, 6);
            let rec = apple
                .program()
                .walker
                .walk(p, &class.path)
                .unwrap_or_else(|e| panic!("{kind}: walk failed for {}: {e}", class.id));
            assert_eq!(
                rec.packet.host_tag,
                HostTag::Fin,
                "{kind}: {} incomplete",
                class.id
            );
            assert_eq!(rec.instances.len(), class.chain.len());
        }
        // TCAM accounting is self-consistent.
        let tcam = &apple.program().tcam;
        assert_eq!(
            tcam.tagged_per_switch.values().sum::<usize>(),
            tcam.tagged_total,
            "{kind}: per-switch TCAM sums wrong"
        );
        assert!(tcam.reduction_ratio() > 1.0, "{kind}: tagging did not help");
    }
}

#[test]
fn engine_beats_both_baselines_where_the_paper_says() {
    let topo = TopologyKind::Internet2.build();
    let tm = GravityModel::new(2_000.0, 8).base_matrix(&topo);
    let classes = ClassSet::build(
        &topo,
        &tm,
        &ClassConfig {
            max_classes: 25,
            ..Default::default()
        },
    );
    let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
    let placement = OptimizationEngine::new(EngineConfig::default())
        .place(&classes, &orch)
        .expect("feasible");
    let ingress = ingress_per_class(&classes);
    assert!(
        placement.total_cores() < ingress.total_cores(),
        "APPLE {} vs ingress {}",
        placement.total_cores(),
        ingress.total_cores()
    );
    // Steering interferes; APPLE does not (trivially — it never re-routes).
    let steering = TrafficSteering::with_central_sites(&topo);
    let (changed, extra_hops) = steering.interference(&topo, &classes);
    assert!(changed > 0.5);
    assert!(extra_hops > 0.0);
}

#[test]
fn exact_and_rounded_agree_on_small_instances() {
    let topo = TopologyKind::Internet2.build();
    let tm = GravityModel::new(800.0, 5).base_matrix(&topo);
    let classes = ClassSet::build(
        &topo,
        &tm,
        &ClassConfig {
            max_classes: 5,
            ..Default::default()
        },
    );
    let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
    let rounded = OptimizationEngine::new(EngineConfig::default())
        .place(&classes, &orch)
        .expect("feasible");
    let exact = OptimizationEngine::new(EngineConfig {
        exact: true,
        ..Default::default()
    })
    .place(&classes, &orch)
    .expect("feasible");
    assert!(rounded.total_instances() >= exact.total_instances());
    // The LP-guided rounding should land within a small absolute gap.
    assert!(
        rounded.total_instances() - exact.total_instances() <= 3,
        "rounding gap too large: {} vs {}",
        rounded.total_instances(),
        exact.total_instances()
    );
}

#[test]
fn replan_responds_to_scaled_traffic() {
    let topo = TopologyKind::Geant.build();
    let series = TmSeries::generate(&topo, &SeriesConfig::small(13));
    let mean = series.mean();
    let low = Apple::plan(&topo, &mean.scaled(0.5), &small_config()).expect("feasible");
    let high = Apple::plan(&topo, &mean.scaled(2.0), &small_config()).expect("feasible");
    assert!(
        high.placement().total_instances() >= low.placement().total_instances(),
        "more traffic cannot need fewer instances: {} vs {}",
        high.placement().total_instances(),
        low.placement().total_instances()
    );
}

#[test]
fn consistent_hash_and_prefix_split_agree_on_fractions() {
    let topo = TopologyKind::Internet2.build();
    let tm = GravityModel::new(1_200.0, 6).base_matrix(&topo);
    let classes = ClassSet::build(
        &topo,
        &tm,
        &ClassConfig {
            max_classes: 10,
            ..Default::default()
        },
    );
    let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
    let placement = OptimizationEngine::new(EngineConfig::default())
        .place(&classes, &orch)
        .expect("feasible");
    let hash = SubclassPlan::derive(&classes, &placement, SplitStrategy::ConsistentHash);
    let prefix = SubclassPlan::derive(&classes, &placement, SplitStrategy::PrefixSplit);
    assert_eq!(hash.len(), prefix.len());
    for (a, b) in hash.subclasses().iter().zip(prefix.subclasses()) {
        assert_eq!(a.class, b.class);
        assert_eq!(a.stage_positions, b.stage_positions);
        assert!((a.fraction() - b.fraction()).abs() < 1e-12);
        assert!(a.prefixes.is_empty());
        assert!(!b.prefixes.is_empty());
    }
}

#[test]
fn every_chain_nf_has_an_instance_on_path() {
    // The structural core of policy enforcement, checked directly on the
    // placement rather than via packet walks.
    let topo = TopologyKind::Univ1.build();
    let tm = GravityModel::new(2_000.0, 9).base_matrix(&topo);
    let apple = Apple::plan(&topo, &tm, &small_config()).expect("feasible");
    for class in apple.classes() {
        for &nf in class.chain.nfs() {
            let on_path: u32 = class.path.iter().map(|&v| apple.placement().q(v, nf)).sum();
            assert!(
                on_path > 0,
                "{}: no {} instance on path {}",
                class.id,
                nf,
                class.path
            );
        }
    }
    // And the placement only uses catalog NFs.
    for (_, nf, _) in apple.placement().q_entries() {
        assert!(NfType::all().contains(&nf));
    }
}
