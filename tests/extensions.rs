//! Integration tests for the paper's extension points implemented here:
//! §X header-rewriting NFs (global sub-class tags), §V-B cross-product
//! fallback accounting, §IV online placement, §X multi-resource (DRF)
//! scheduling, plus the serialisation substrates.

use apple_nfv::core::classes::{ClassConfig, ClassSet, EquivalenceClass};
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::core::online::OnlinePlacer;
use apple_nfv::dataplane::packet::{HostTag, Packet};
use apple_nfv::dataplane::walk::NAT_POOL_PREFIX;
use apple_nfv::nf::drf::drf_allocate;
use apple_nfv::nf::VnfSpec;
use apple_nfv::topology::{Graph, TopologyKind};
use apple_nfv::traffic::{GravityModel, TrafficMatrix};

fn plan(kind: TopologyKind, seed: u64, classes: usize) -> Apple {
    let topo = kind.build();
    let tm = GravityModel::new(2_000.0, seed).base_matrix(&topo);
    Apple::plan(
        &topo,
        &tm,
        &AppleConfig {
            classes: ClassConfig {
                max_classes: classes,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("planning succeeds at this scale")
}

#[test]
fn nat_classes_complete_chains_despite_rewrites() {
    // At full-deployment scale: every class whose chain includes NAT must
    // still complete — the global-tag machinery in action — and the packet
    // must demonstrably leave the class's source prefix.
    let apple = plan(TopologyKind::Geant, 61, 25);
    let mut nat_classes = 0;
    for class in apple.classes() {
        let has_nat = class
            .chain
            .nfs()
            .iter()
            .any(|&nf| VnfSpec::of(nf).rewrites_headers());
        let p = Packet::new(class.src_prefix.0 | 4, class.dst_prefix.0 | 4, 7, 80, 6);
        let rec = apple
            .program()
            .walker
            .walk(p, &class.path)
            .unwrap_or_else(|e| panic!("{}: {e}", class.id));
        assert_eq!(rec.packet.host_tag, HostTag::Fin);
        if has_nat {
            nat_classes += 1;
            assert_eq!(
                rec.packet.src_ip & 0xff00_0000,
                NAT_POOL_PREFIX,
                "{}: NAT did not rewrite",
                class.id
            );
            assert!(
                rec.packet.subclass_tag.unwrap() >= 0x8000,
                "{}: expected a global tag",
                class.id
            );
        }
    }
    assert!(nat_classes > 0, "workload contained no NAT chains");
}

#[test]
fn cross_product_penalty_scales_with_topology_size() {
    let small = plan(TopologyKind::Internet2, 62, 15);
    let large = plan(TopologyKind::Geant, 62, 15);
    // Penalty ≈ routing-table size ≈ n − 1.
    assert!(
        (small.program().tcam.cross_product_penalty() - 11.0).abs() < 1e-9,
        "Internet2 penalty {}",
        small.program().tcam.cross_product_penalty()
    );
    assert!(
        (large.program().tcam.cross_product_penalty() - 22.0).abs() < 1e-9,
        "GEANT penalty {}",
        large.program().tcam.cross_product_penalty()
    );
}

#[test]
fn online_placer_extends_a_global_plan() {
    let mut apple = plan(TopologyKind::Internet2, 63, 12);
    let topo = TopologyKind::Internet2.build();
    let tm = GravityModel::new(2_000.0, 63).base_matrix(&topo);
    let all = ClassSet::build(&topo, &tm, &ClassConfig::default());
    let planned: std::collections::BTreeSet<_> = apple
        .classes()
        .iter()
        .map(EquivalenceClass::od_pair)
        .collect();
    let mut placer = OnlinePlacer::from_assignment(&apple.program().assignment);
    let mut placed = 0;
    let mut launched = 0;
    for class in all
        .iter()
        .filter(|c| !planned.contains(&c.od_pair()))
        .take(10)
    {
        let d = placer
            .place_class(class, apple.orchestrator_mut())
            .unwrap_or_else(|e| panic!("online placement failed: {e}"));
        // Order constraint holds.
        assert!(d.stage_positions.windows(2).all(|w| w[0] <= w[1]));
        // Instances really exist at the claimed switches.
        for (&inst, &pos) in d.stage_instances.iter().zip(&d.stage_positions) {
            let host = apple
                .orchestrator()
                .instance(inst)
                .expect("placed instances exist")
                .host_switch();
            assert_eq!(host, class.path.nodes()[pos].0);
        }
        placed += 1;
        launched += d.launched.len();
    }
    assert_eq!(placed, 10);
    // Reuse must do some of the work: fewer launches than stages placed.
    let stages: usize = all
        .iter()
        .filter(|c| !planned.contains(&c.od_pair()))
        .take(10)
        .map(|c| c.chain.len())
        .sum();
    assert!(launched < stages, "no reuse happened ({launched}/{stages})");
}

#[test]
fn drf_shares_host_resources_among_instances() {
    // Take a loaded host from a real plan and fair-share CPU + memory among
    // its instances.
    let apple = plan(TopologyKind::Internet2, 64, 15);
    let busiest = apple
        .orchestrator()
        .hosts()
        .values()
        .max_by_key(|h| h.used.cores)
        .expect("hosts exist");
    let demands: Vec<Vec<f64>> = apple
        .orchestrator()
        .instances()
        .filter(|i| i.host_switch() == busiest.switch.0)
        .map(|i| {
            let r = i.spec().resources();
            vec![f64::from(r.cores), f64::from(r.memory_mib)]
        })
        .collect();
    if demands.len() < 2 {
        return; // nothing to share
    }
    let capacity = vec![
        f64::from(busiest.capacity.cores),
        f64::from(busiest.capacity.memory_mib),
    ];
    let alloc = drf_allocate(&demands, &capacity);
    // Feasible and Pareto-efficient.
    for &u in &alloc.utilisation {
        assert!(u <= 1.0 + 1e-9);
    }
    assert!(alloc.utilisation.iter().any(|&u| u > 0.99));
    // Every instance got a positive share.
    assert!(alloc.units.iter().all(|&x| x > 0.0));
}

#[test]
fn engine_model_survives_lp_export_and_presolve() {
    // Build the real Eq. (1)-(8) model via the facade, export it, and check
    // the presolved solve agrees with the plain solve.
    use apple_nfv::lp::{Cmp, Model, Sense};
    let mut m = Model::new(Sense::Min);
    let q1 = m.add_int_var("q_v0_FW", 0.0, 16.0, 1.0);
    let d1 = m.add_var("d_c0_0_0", 0.0, 1.0, 0.0);
    let d2 = m.add_var("d_c0_1_0", 0.0, 1.0, 0.0);
    m.add_constraint([(d1, 1.0), (d2, 1.0)], Cmp::Eq, 1.0)
        .unwrap();
    m.add_constraint([(d1, 500.0), (q1, -900.0)], Cmp::Le, 0.0)
        .unwrap();
    let text = m.to_lp_format();
    assert!(text.contains("q_v0_FW_0") && text.contains("General"));
    let plain = m.solve_lp().unwrap();
    let pre = m.solve_lp_presolved().unwrap();
    assert!((plain.objective() - pre.objective()).abs() < 1e-7);
}

#[test]
fn topologies_round_trip_and_export() {
    for kind in TopologyKind::all() {
        let topo = kind.build();
        let text = topo.graph.to_edge_list();
        let parsed =
            Graph::from_edge_list(&text).unwrap_or_else(|e| panic!("{kind}: parse failed: {e}"));
        assert_eq!(parsed.node_count(), topo.graph.node_count());
        assert_eq!(
            parsed.undirected_link_count(),
            topo.graph.undirected_link_count()
        );
        assert!(parsed.is_connected());
        let dot = topo.graph.to_dot();
        assert!(dot.contains("graph topology"));
    }
}

#[test]
fn traffic_matrices_round_trip() {
    for kind in TopologyKind::evaluation_trio() {
        let topo = kind.build();
        let tm = GravityModel::new(5_000.0, 65).base_matrix(&topo);
        let parsed = TrafficMatrix::from_csv(&tm.to_csv()).expect("parse");
        assert_eq!(parsed, tm);
    }
}
