//! Integration tests for fast failover (§VI) driven through the simulator:
//! the Fig. 12 loss ordering, roll-back hygiene, and the interference-
//! freedom guarantee *during* failover.

use apple_nfv::core::classes::{ClassConfig, ClassId};
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::sim::replay::{replay, ReplayConfig};
use apple_nfv::topology::{zoo, TopologyKind};
use apple_nfv::traffic::{GravityModel, SeriesConfig, TmSeries};
use std::collections::BTreeMap;

fn replay_cfg(fast_failover: bool) -> ReplayConfig {
    ReplayConfig {
        apple: AppleConfig {
            classes: ClassConfig {
                max_classes: 12,
                ..Default::default()
            },
            ..Default::default()
        },
        fast_failover,
        ..Default::default()
    }
}

fn bursty(topo: &apple_nfv::topology::Topology, seed: u64) -> TmSeries {
    TmSeries::generate(
        topo,
        &SeriesConfig {
            snapshots: 72,
            burst_pairs: 2,
            burst_scale: 8.0,
            ..SeriesConfig::paper(seed)
        },
    )
}

#[test]
fn failover_never_hurts_on_the_evaluation_trio() {
    for kind in TopologyKind::evaluation_trio() {
        let topo = kind.build();
        let series = bursty(&topo, 31);
        let with =
            replay(&topo, &series, &replay_cfg(true)).unwrap_or_else(|e| panic!("{kind}: {e}"));
        let without =
            replay(&topo, &series, &replay_cfg(false)).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert!(
            with.loss.mean() <= without.loss.mean() + 1e-9,
            "{kind}: failover worsened mean loss: {} vs {}",
            with.loss.mean(),
            without.loss.mean()
        );
    }
}

#[test]
fn helper_cores_bounded_and_released() {
    let topo = zoo::internet2();
    let series = bursty(&topo, 32);
    let out = replay(&topo, &series, &replay_cfg(true)).expect("replay runs");
    // The §IX-E claim at our scale: bounded extra cores.
    assert!(
        out.peak_helper_cores <= 32,
        "helpers ballooned to {} cores",
        out.peak_helper_cores
    );
    // All helpers cancelled by the end of the run.
    assert_eq!(out.helper_cores.samples().last().unwrap().1, 0.0);
}

#[test]
fn failover_decisions_never_change_paths() {
    // Drive the Dynamic Handler directly and check that every share —
    // including helper shares created mid-failover — maps stages onto
    // switches of the class's original path, in non-decreasing order.
    let topo = zoo::internet2();
    let tm = GravityModel::new(2_000.0, 33).base_matrix(&topo);
    let mut apple = Apple::plan(
        &topo,
        &tm,
        &AppleConfig {
            classes: ClassConfig {
                max_classes: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("feasible");
    let mut handler = apple.dynamic_handler().unwrap();
    let classes = apple.classes().clone();
    // Burst every class and notify for every instance in turn.
    let rates: BTreeMap<ClassId, f64> =
        classes.iter().map(|c| (c.id, c.rate_mbps * 10.0)).collect();
    let instances: Vec<_> = handler
        .shares()
        .iter()
        .flat_map(|s| s.instances.clone())
        .collect();
    for inst in instances {
        let _ = handler.handle_overload(inst, &rates, &classes, apple.orchestrator_mut());
    }
    for share in handler.shares() {
        let class = classes.class(share.class).expect("share has a class");
        let mut last_pos = 0usize;
        for (j, &inst) in share.instances.iter().enumerate() {
            let host = apple
                .orchestrator()
                .instance(inst)
                .unwrap_or_else(|| panic!("missing instance {inst}"))
                .host_switch();
            let pos = class
                .path
                .index_of(apple_nfv::topology::NodeId(host))
                .unwrap_or_else(|| {
                    panic!(
                        "failover placed stage {j} of {} off-path (switch {host})",
                        share.class
                    )
                });
            assert!(pos >= last_pos, "stage order violated in {}", share.class);
            last_pos = pos;
        }
    }
    assert!(handler.fractions_consistent());
}

#[test]
fn roll_back_is_idempotent() {
    let topo = zoo::internet2();
    let tm = GravityModel::new(2_000.0, 34).base_matrix(&topo);
    let mut apple = Apple::plan(
        &topo,
        &tm,
        &AppleConfig {
            classes: ClassConfig {
                max_classes: 8,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("feasible");
    let mut handler = apple.dynamic_handler().unwrap();
    let classes = apple.classes().clone();
    let rates: BTreeMap<ClassId, f64> =
        classes.iter().map(|c| (c.id, c.rate_mbps * 20.0)).collect();
    let victim = handler.shares()[0].instances[0];
    let _ = handler.handle_overload(victim, &rates, &classes, apple.orchestrator_mut());
    let count_after_failover = apple.orchestrator().instance_count();
    handler.roll_back(apple.orchestrator_mut());
    let baseline = apple.orchestrator().instance_count();
    assert!(baseline <= count_after_failover);
    // Second roll-back changes nothing.
    handler.roll_back(apple.orchestrator_mut());
    assert_eq!(apple.orchestrator().instance_count(), baseline);
    assert!(handler.fractions_consistent());
    assert_eq!(handler.helper_cores(), 0);
}

#[test]
fn loss_probabilities_valid_across_topologies() {
    for kind in TopologyKind::evaluation_trio() {
        let topo = kind.build();
        let series = bursty(&topo, 35);
        let out = replay(&topo, &series, &replay_cfg(true)).expect("replay runs");
        assert_eq!(out.loss.len(), series.len());
        for (_, v) in out.loss.samples() {
            assert!((0.0..=1.0).contains(v));
        }
    }
}
