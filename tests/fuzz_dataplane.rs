//! Fuzz-style tests for the programmed data plane and the sub-class
//! coupling, driven by seeded `apple_rng` streams (see `tests/README.md`).
//!
//! * arbitrary packets (any header) walked along any class path terminate
//!   without error and without leaving the path,
//! * packets inside a class's prefix always complete that class's chain,
//! * the inverse-CDF coupling produces valid monotone sub-classes for
//!   *any* feasible fractional distribution, not just engine outputs.

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::dataplane::packet::{HostTag, Packet};
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;
use apple_rng::{Rng, RngCore, SeedableRng, StdRng};

/// Base seed for this file; each case perturbs it by its index.
const SEED: u64 = 0xda7a_91a6;

fn apple_internet2(seed: u64) -> Apple {
    let topo = zoo::internet2();
    let tm = GravityModel::new(1_800.0, seed).base_matrix(&topo);
    Apple::plan(
        &topo,
        &tm,
        &AppleConfig {
            classes: ClassConfig {
                max_classes: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("internet2 planning is feasible")
}

#[test]
fn arbitrary_packets_never_break_the_data_plane() {
    // One deployment reused across cases (deterministic seed).
    let apple = apple_internet2(77);
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ case);
        let src = rng.next_u64() as u32;
        let dst = rng.next_u64() as u32;
        let sport = rng.next_u64() as u16;
        let dport = rng.next_u64() as u16;
        // Bias towards the real TCP/UDP protocol numbers, but keep
        // arbitrary bytes in the mix.
        let proto = match rng.gen_range(0u32..3) {
            0 => 6u8,
            1 => 17u8,
            _ => rng.next_u64() as u8,
        };
        let class_idx = rng.gen_range(0usize..10);

        let class = &apple.classes().classes()[class_idx % apple.classes().len()];
        let p = Packet::new(src, dst, sport, dport, proto);
        let rec = apple
            .program()
            .walker
            .walk(p, &class.path)
            .unwrap_or_else(|e| panic!("case {case}: walk error: {e}"));
        // Interference freedom holds for *any* packet.
        let expect: Vec<usize> = class.path.iter().map(|n| n.0).collect();
        assert_eq!(rec.switches, expect, "case {case}");
        // Instances visited are never repeated (§V-B).
        let mut seen = std::collections::BTreeSet::new();
        for i in &rec.instances {
            assert!(seen.insert(*i), "case {case}: instance visited twice");
        }
    }
}

#[test]
fn in_prefix_packets_always_complete() {
    // Five deployments (tm seeds 100..105), each probed with random
    // in-prefix hosts across every class.
    for seed in 0..5u64 {
        let apple = apple_internet2(100 + seed);
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x100 + seed));
        for _ in 0..10 {
            let host = rng.gen_range(1u32..255);
            let dhost = rng.gen_range(1u32..255);
            let class_idx = rng.gen_range(0usize..10);
            let class = &apple.classes().classes()[class_idx % apple.classes().len()];
            let p = Packet::new(
                class.src_prefix.0 | host,
                class.dst_prefix.0 | dhost,
                12_345,
                80,
                6,
            );
            let rec = apple
                .program()
                .walker
                .walk(p, &class.path)
                .unwrap_or_else(|e| panic!("seed {seed}: walk error: {e}"));
            assert_eq!(rec.packet.host_tag, HostTag::Fin);
            assert_eq!(rec.instances.len(), class.chain.len());
        }
    }
}

#[test]
fn coupling_valid_for_arbitrary_monotone_distributions() {
    use apple_nfv::core::classes::{ClassId, EquivalenceClass};
    use apple_nfv::core::engine::{EngineConfig, OptimizationEngine};
    use apple_nfv::core::orchestrator::ResourceOrchestrator;
    use apple_nfv::core::policy::PolicyChain;
    use apple_nfv::core::subclass::{SplitStrategy, SubclassPlan};
    use apple_nfv::nf::NfType;
    use apple_nfv::topology::{NodeId, Path};
    use apple_nfv::traffic::Flow;

    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x200 + case));
        // Stage-0 weights over 2..5 path positions and a chain of 1..4 NFs.
        let plen = rng.gen_range(2usize..5);
        let clen = rng.gen_range(1usize..4);

        let topo = zoo::line(plen);
        let nodes: Vec<NodeId> = (0..plen).map(NodeId).collect();
        let chain_nfs: Vec<NfType> = NfType::all()[..clen].to_vec();
        let class = EquivalenceClass {
            id: ClassId(0),
            path: Path::new(nodes).unwrap(),
            chain: PolicyChain::new(chain_nfs).unwrap(),
            rate_mbps: 50.0,
            src_prefix: (Flow::prefix_of(NodeId(0)), 24),
            dst_prefix: (Flow::prefix_of(NodeId(plen - 1)), 24),
            proto: None,
            dst_ports: Vec::new(),
        };
        let classes = ClassSet::from_classes(vec![class]);
        // Solve for a real placement (the engine's d is one feasible
        // distribution), then derive and check the plan's invariants.
        let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
        let placement = OptimizationEngine::new(EngineConfig::default())
            .place(&classes, &orch)
            .unwrap_or_else(|e| panic!("case {case}: engine: {e}"));
        let plan = SubclassPlan::derive(&classes, &placement, SplitStrategy::PrefixSplit);
        let total: f64 = plan.of_class(ClassId(0)).iter().map(|s| s.fraction()).sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}");
        for s in plan.subclasses() {
            assert!(
                s.stage_positions.windows(2).all(|w| w[0] <= w[1]),
                "case {case}"
            );
            assert!(!s.prefixes.is_empty(), "case {case}");
        }
    }
}
