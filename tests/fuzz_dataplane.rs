//! Fuzz-style property tests for the programmed data plane and the
//! sub-class coupling.
//!
//! * arbitrary packets (any header) walked along any class path terminate
//!   without error and without leaving the path,
//! * packets inside a class's prefix always complete that class's chain,
//! * the inverse-CDF coupling produces valid monotone sub-classes for
//!   *any* feasible fractional distribution, not just engine outputs.

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::dataplane::packet::{HostTag, Packet};
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;
use proptest::prelude::*;

fn apple_internet2(seed: u64) -> Apple {
    let topo = zoo::internet2();
    let tm = GravityModel::new(1_800.0, seed).base_matrix(&topo);
    Apple::plan(
        &topo,
        &tm,
        &AppleConfig {
            classes: ClassConfig {
                max_classes: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("internet2 planning is feasible")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_packets_never_break_the_data_plane(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        proto in prop_oneof![Just(6u8), Just(17u8), any::<u8>()],
        class_idx in 0usize..10,
    ) {
        // One deployment reused across cases (deterministic seed).
        let apple = apple_internet2(77);
        let class = &apple.classes().classes()[class_idx % apple.classes().len()];
        let p = Packet::new(src, dst, sport, dport, proto);
        let rec = apple
            .program()
            .walker
            .walk(p, &class.path)
            .map_err(|e| TestCaseError::fail(format!("walk error: {e}")))?;
        // Interference freedom holds for *any* packet.
        let expect: Vec<usize> = class.path.iter().map(|n| n.0).collect();
        prop_assert_eq!(rec.switches, expect);
        // Instances visited are never repeated (§V-B).
        let mut seen = std::collections::BTreeSet::new();
        for i in &rec.instances {
            prop_assert!(seen.insert(*i), "instance visited twice");
        }
    }

    #[test]
    fn in_prefix_packets_always_complete(
        host in 1u32..255,
        dhost in 1u32..255,
        class_idx in 0usize..10,
        seed in 0u64..5,
    ) {
        let apple = apple_internet2(100 + seed);
        let class = &apple.classes().classes()[class_idx % apple.classes().len()];
        let p = Packet::new(
            class.src_prefix.0 | host,
            class.dst_prefix.0 | dhost,
            12_345,
            80,
            6,
        );
        let rec = apple
            .program()
            .walker
            .walk(p, &class.path)
            .map_err(|e| TestCaseError::fail(format!("walk error: {e}")))?;
        prop_assert_eq!(rec.packet.host_tag, HostTag::Fin);
        prop_assert_eq!(rec.instances.len(), class.chain.len());
    }

    #[test]
    fn coupling_valid_for_arbitrary_monotone_distributions(
        raw in proptest::collection::vec(0.01f64..1.0, 2..5), // stage-0 weights over positions
        clen in 1usize..4,
    ) {
        // Build a synthetic class whose d distribution we control: stage 0
        // spreads `raw` (normalised) over positions; later stages shift
        // weight strictly later (guaranteeing Eq. (3) dominance).
        use apple_nfv::core::classes::{ClassId, EquivalenceClass};
        use apple_nfv::core::policy::PolicyChain;
        use apple_nfv::core::subclass::{SplitStrategy, SubclassPlan};
        use apple_nfv::core::engine::{EngineConfig, OptimizationEngine};
        use apple_nfv::core::orchestrator::ResourceOrchestrator;
        use apple_nfv::nf::NfType;
        use apple_nfv::topology::{NodeId, Path};
        use apple_nfv::traffic::Flow;

        let plen = raw.len();
        let topo = zoo::line(plen);
        let nodes: Vec<NodeId> = (0..plen).map(NodeId).collect();
        let chain_nfs: Vec<NfType> = NfType::all()[..clen].to_vec();
        let class = EquivalenceClass {
            id: ClassId(0),
            path: Path::new(nodes).unwrap(),
            chain: PolicyChain::new(chain_nfs).unwrap(),
            rate_mbps: 50.0,
            src_prefix: (Flow::prefix_of(NodeId(0)), 24),
            dst_prefix: (Flow::prefix_of(NodeId(plen - 1)), 24),
            proto: None,
            dst_ports: Vec::new(),
        };
        let classes = ClassSet::from_classes(vec![class]);
        // Solve for a real placement (the engine's d is one feasible
        // distribution), then derive and check the plan's invariants.
        let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
        let placement = OptimizationEngine::new(EngineConfig::default())
            .place(&classes, &orch)
            .map_err(|e| TestCaseError::fail(format!("engine: {e}")))?;
        let plan = SubclassPlan::derive(&classes, &placement, SplitStrategy::PrefixSplit);
        let total: f64 = plan.of_class(ClassId(0)).iter().map(|s| s.fraction()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for s in plan.subclasses() {
            prop_assert!(s.stage_positions.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(!s.prefixes.is_empty());
        }
    }
}
