//! Fuzz-style tests for the programmed data plane and the sub-class
//! coupling, driven by seeded `apple_rng` streams (see `tests/README.md`).
//!
//! * arbitrary packets (any header) walked along any class path terminate
//!   without error and without leaving the path,
//! * packets inside a class's prefix always complete that class's chain,
//! * hostile update plans are survivable: empty diffs bill nothing,
//!   delete-then-re-add of a sub-class round-trips bitwise, and TCAM
//!   capacity exhaustion mid-plan fails atomically at a barrier boundary
//!   with every original chain still enforced,
//! * the inverse-CDF coupling produces valid monotone sub-classes for
//!   *any* feasible fractional distribution, not just engine outputs.

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::core::rules::{snapshot_of, RuleGenConfig};
use apple_nfv::dataplane::compiler::{compile, CompilerSnapshot};
use apple_nfv::dataplane::diff::{diff, ApplyError};
use apple_nfv::dataplane::packet::{HostTag, Packet};
use apple_nfv::sim::differential_conformance;
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;
use apple_rng::{Rng, RngCore, SeedableRng, StdRng};

/// Base seed for this file; each case perturbs it by its index.
const SEED: u64 = 0xda7a_91a6;

fn apple_internet2(seed: u64) -> Apple {
    let topo = zoo::internet2();
    let tm = GravityModel::new(1_800.0, seed).base_matrix(&topo);
    Apple::plan(
        &topo,
        &tm,
        &AppleConfig {
            classes: ClassConfig {
                max_classes: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("internet2 planning is feasible")
}

#[test]
fn arbitrary_packets_never_break_the_data_plane() {
    // One deployment reused across cases (deterministic seed).
    let apple = apple_internet2(77);
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ case);
        let src = rng.next_u64() as u32;
        let dst = rng.next_u64() as u32;
        let sport = rng.next_u64() as u16;
        let dport = rng.next_u64() as u16;
        // Bias towards the real TCP/UDP protocol numbers, but keep
        // arbitrary bytes in the mix.
        let proto = match rng.gen_range(0u32..3) {
            0 => 6u8,
            1 => 17u8,
            _ => rng.next_u64() as u8,
        };
        let class_idx = rng.gen_range(0usize..10);

        let class = &apple.classes().classes()[class_idx % apple.classes().len()];
        let p = Packet::new(src, dst, sport, dport, proto);
        let rec = apple
            .program()
            .walker
            .walk(p, &class.path)
            .unwrap_or_else(|e| panic!("case {case}: walk error: {e}"));
        // Interference freedom holds for *any* packet.
        let expect: Vec<usize> = class.path.iter().map(|n| n.0).collect();
        assert_eq!(rec.switches, expect, "case {case}");
        // Instances visited are never repeated (§V-B).
        let mut seen = std::collections::BTreeSet::new();
        for i in &rec.instances {
            assert!(seen.insert(*i), "case {case}: instance visited twice");
        }
    }
}

#[test]
fn in_prefix_packets_always_complete() {
    // Five deployments (tm seeds 100..105), each probed with random
    // in-prefix hosts across every class.
    for seed in 0..5u64 {
        let apple = apple_internet2(100 + seed);
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x100 + seed));
        for _ in 0..10 {
            let host = rng.gen_range(1u32..255);
            let dhost = rng.gen_range(1u32..255);
            let class_idx = rng.gen_range(0usize..10);
            let class = &apple.classes().classes()[class_idx % apple.classes().len()];
            let p = Packet::new(
                class.src_prefix.0 | host,
                class.dst_prefix.0 | dhost,
                12_345,
                80,
                6,
            );
            let rec = apple
                .program()
                .walker
                .walk(p, &class.path)
                .unwrap_or_else(|e| panic!("seed {seed}: walk error: {e}"));
            assert_eq!(rec.packet.host_tag, HostTag::Fin);
            assert_eq!(rec.instances.len(), class.chain.len());
        }
    }
}

/// Lowers a planned Internet2 deployment into a compiler snapshot.
fn internet2_snapshot(seed: u64) -> CompilerSnapshot {
    let topo = zoo::internet2();
    let apple = apple_internet2(seed);
    snapshot_of(
        &topo,
        apple.classes(),
        apple.subclasses(),
        &apple.program().assignment,
        apple.orchestrator(),
        &RuleGenConfig::default(),
    )
    .expect("planned deployments lower cleanly")
}

/// Hostile plan input: the empty diff. `diff(p, p)` must emit no batches
/// and bill no operations, for real deployments and perturbed clones.
#[test]
fn empty_diffs_bill_nothing() {
    for seed in 0..4u64 {
        let snap = internet2_snapshot(200 + seed);
        let prog = compile(&snap);
        let plan = diff(&prog, &prog);
        assert!(plan.is_empty(), "seed {seed}: diff(p, p) emitted batches");
        assert_eq!(plan.op_count(), 0, "seed {seed}");
        assert_eq!(plan.stats().total(), 0, "seed {seed}");
        // A clone compiles to the identical program (compiler purity), so
        // the snapshot round-trip is also an empty diff.
        let again = compile(&snap.clone());
        assert!(diff(&prog, &again).is_empty(), "seed {seed}");
        // And the full conformance battery agrees: zero barriers.
        let report = differential_conformance(&snap, &snap).expect("identity conforms");
        assert_eq!(report.barriers, 0, "seed {seed}");
    }
}

/// Hostile plan input: delete a sub-class, then re-add the *same*
/// sub-class. Both steps must conform at every barrier and the program
/// must return bitwise to the original compile — no residue, no drift.
#[test]
fn delete_then_readd_roundtrips() {
    for case in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x300 + case));
        let full = internet2_snapshot(210 + case);
        let mut gone = full.clone();
        let dropped = gone
            .subclasses
            .remove(rng.gen_range(0..gone.subclasses.len()));
        let full_prog = compile(&full);
        let gone_prog = compile(&gone);

        // Delete leg.
        differential_conformance(&full, &gone)
            .unwrap_or_else(|e| panic!("case {case} ({dropped:?} delete): {e}"));
        let mut prog = full_prog.clone();
        diff(&full_prog, &gone_prog).apply(&mut prog, None).unwrap();
        assert_eq!(prog, gone_prog, "case {case}: delete leg drifted");

        // Re-add leg: back to the exact original program, rule for rule.
        differential_conformance(&gone, &full)
            .unwrap_or_else(|e| panic!("case {case} ({dropped:?} re-add): {e}"));
        diff(&gone_prog, &full_prog).apply(&mut prog, None).unwrap();
        assert_eq!(prog, full_prog, "case {case}: re-add leg left residue");
    }
}

/// Hostile plan input: TCAM capacity exhaustion mid-batch. The up-front
/// `check_capacity` must reject the plan, a capped `apply` must fail
/// atomically at a barrier boundary, and the stranded hybrid program must
/// still walk every original class chain-safely.
#[test]
fn tcam_exhaustion_mid_batch_is_atomic_and_chain_safe() {
    for case in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x400 + case));
        let base = internet2_snapshot(220 + case);
        // Grow the deployment: clone a sub-class under a fresh tag with a
        // disjoint prefix, so new classification rules must install on
        // every switch of its path.
        let mut grown = base.clone();
        let donor = rng.gen_range(0..grown.subclasses.len());
        let mut extra = grown.subclasses[donor].clone();
        let fresh_tag = grown.subclasses.iter().map(|s| s.tag).max().unwrap() + 1;
        extra.tag = fresh_tag;
        extra.class = u64::from(fresh_tag);
        extra.class_name = format!("c{fresh_tag}");
        extra.src_prefix = (0xc0a8_0000, 24);
        extra.prefixes = vec![(0xc0a8_0000, 24)];
        grown.subclasses.push(extra);

        let base_prog = compile(&base);
        let grown_prog = compile(&grown);
        let plan = diff(&base_prog, &grown_prog);
        assert!(plan.op_count() > 0, "case {case}: growth produced no plan");

        // Find the tightest capacity that admits the plan; one less must
        // exhaust mid-update.
        let enough = (1..10_000)
            .find(|&cap| plan.check_capacity(&base_prog, cap).is_ok())
            .expect("some capacity admits the plan");
        assert!(enough > 1, "case {case}: plan trivially fits capacity 1");
        let starved = enough - 1;
        assert!(
            plan.check_capacity(&base_prog, starved).is_err(),
            "case {case}: check_capacity admitted a starved plan"
        );

        let mut hybrid = base_prog.clone();
        let err = plan.apply(&mut hybrid, Some(starved)).unwrap_err();
        let ApplyError::TcamCapacity {
            needed, capacity, ..
        } = err;
        assert!(needed > capacity, "case {case}");
        assert_ne!(
            hybrid, grown_prog,
            "case {case}: starved apply claims completion"
        );

        // Atomic: the hybrid sits at a barrier boundary, so every original
        // class still walks its complete chain (interference-free).
        let walker = hybrid.walker();
        for s in &base.subclasses {
            let p = Packet::new(
                s.src_prefix.0 | 1,
                s.dst_prefix.0 | 1,
                40_000,
                s.dst_ports.first().copied().unwrap_or(80),
                s.proto.unwrap_or(6),
            );
            let path = apple_nfv::topology::Path::new(
                s.path
                    .iter()
                    .map(|&n| apple_nfv::topology::NodeId(n))
                    .collect(),
            )
            .expect("snapshot paths are valid");
            let rec = walker
                .walk(p, &path)
                .unwrap_or_else(|e| panic!("case {case}: hybrid stranded {}: {e}", s.class_name));
            if !rec.instances.is_empty() {
                assert_eq!(
                    rec.packet.host_tag,
                    HostTag::Fin,
                    "case {case}: {} chain incomplete in hybrid",
                    s.class_name
                );
                assert_eq!(
                    rec.instances.len(),
                    s.instances.len(),
                    "case {case}: {} skipped a stage in hybrid",
                    s.class_name
                );
            }
        }

        // With enough capacity the same plan completes exactly.
        let mut prog = base_prog.clone();
        plan.apply(&mut prog, Some(enough)).unwrap();
        assert_eq!(prog, grown_prog, "case {case}");
    }
}

#[test]
fn coupling_valid_for_arbitrary_monotone_distributions() {
    use apple_nfv::core::classes::{ClassId, EquivalenceClass};
    use apple_nfv::core::engine::{EngineConfig, OptimizationEngine};
    use apple_nfv::core::orchestrator::ResourceOrchestrator;
    use apple_nfv::core::policy::PolicyChain;
    use apple_nfv::core::subclass::{SplitStrategy, SubclassPlan};
    use apple_nfv::nf::NfType;
    use apple_nfv::topology::{NodeId, Path};
    use apple_nfv::traffic::Flow;

    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x200 + case));
        // Stage-0 weights over 2..5 path positions and a chain of 1..4 NFs.
        let plen = rng.gen_range(2usize..5);
        let clen = rng.gen_range(1usize..4);

        let topo = zoo::line(plen);
        let nodes: Vec<NodeId> = (0..plen).map(NodeId).collect();
        let chain_nfs: Vec<NfType> = NfType::all()[..clen].to_vec();
        let class = EquivalenceClass {
            id: ClassId(0),
            path: Path::new(nodes).unwrap(),
            chain: PolicyChain::new(chain_nfs).unwrap(),
            rate_mbps: 50.0,
            src_prefix: (Flow::prefix_of(NodeId(0)), 24),
            dst_prefix: (Flow::prefix_of(NodeId(plen - 1)), 24),
            proto: None,
            dst_ports: Vec::new(),
        };
        let classes = ClassSet::from_classes(vec![class]);
        // Solve for a real placement (the engine's d is one feasible
        // distribution), then derive and check the plan's invariants.
        let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
        let placement = OptimizationEngine::new(EngineConfig::default())
            .place(&classes, &orch)
            .unwrap_or_else(|e| panic!("case {case}: engine: {e}"));
        let plan = SubclassPlan::derive(&classes, &placement, SplitStrategy::PrefixSplit);
        let total: f64 = plan.of_class(ClassId(0)).iter().map(|s| s.fraction()).sum();
        assert!((total - 1.0).abs() < 1e-9, "case {case}");
        for s in plan.subclasses() {
            assert!(
                s.stage_positions.windows(2).all(|w| w[0] <= w[1]),
                "case {case}"
            );
            assert!(!s.prefixes.is_empty(), "case {case}");
        }
    }
}
