//! Fuzz battery for the online orchestration loop: seeded random
//! interleavings of flow arrivals, departures, jumbo classes (rates no
//! single instance can carry), capacity exhaustion on deliberately tiny
//! hosts, and mid-stream instance crashes. Two properties, checked after
//! **every** step of every interleaving:
//!
//! * no panic, ever — rejected placements surface as shed classes, not
//!   crashes;
//! * the residual-capacity ledger never leaks — every ledger entry maps
//!   to a live orchestrator instance, carries non-zero load, and sums to
//!   exactly the traffic the live classes put on it
//!   (`OrchestrationLoop::check_ledger`).

use apple_nfv::core::online::{OnlineConfig, OrchestrationLoop};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::rng::rngs::StdRng;
use apple_nfv::rng::{Rng, SeedableRng};
use apple_nfv::telemetry::MemoryRecorder;
use apple_nfv::topology::{zoo, NodeId};
use apple_nfv::traffic::arrivals::{FlowEvent, FlowEventKind};
use apple_nfv::traffic::Flow;

/// Base seed for this file (see tests/README.md).
const SEED: u64 = 0xf0ca_a11e;

/// Random interleavings in the main sweep.
const CASES: u64 = 24;

/// Steps per interleaving (before the final drain).
const STEPS: usize = 320;

fn flow_between(src: NodeId, dst: NodeId, id: u64, rate_mbps: f64) -> Flow {
    Flow {
        src_ip: Flow::prefix_of(src) | ((id as u32) & 0x3f),
        dst_ip: Flow::prefix_of(dst) | 1,
        src_port: 1_024 + (id as u16 & 0xfff),
        dst_port: 443,
        proto: 6,
        rate_mbps,
        ingress: src,
        egress: dst,
    }
}

fn event(kind: FlowEventKind, step: usize, id: u64, flow: Flow) -> FlowEvent {
    FlowEvent {
        time_secs: step as f64 * 0.01,
        flow_id: id,
        kind,
        flow,
    }
}

/// One seeded interleaving; returns `(shed_events, jumbo_arrivals,
/// crashes_handled)` so the sweep can assert the hostile paths were
/// actually hit.
fn run_interleaving(case: u64, host_cores: u32, rec: &MemoryRecorder) -> (u64, u64, usize) {
    let topo = zoo::internet2();
    let nodes = topo.graph.node_count();
    let mut rng = StdRng::seed_from_u64(SEED ^ case);
    let orch = ResourceOrchestrator::with_uniform_hosts(&topo, host_cores);
    let mut looper = OrchestrationLoop::new(
        &topo,
        orch,
        OnlineConfig {
            resolve_every: 90,
            max_churn: 16,
            seed: SEED ^ case,
            ..Default::default()
        },
    );
    let mut live: Vec<(u64, Flow)> = Vec::new();
    let mut next_id = 0u64;
    let mut shed_events = 0u64;
    let mut jumbo_arrivals = 0u64;
    let mut crashes = 0usize;
    for step in 0..STEPS {
        let arrive = live.is_empty() || rng.gen_bool(0.55);
        let ev = if arrive {
            let src = NodeId(rng.gen_range(0..nodes));
            let dst = loop {
                let d = NodeId(rng.gen_range(0..nodes));
                if d != src {
                    break d;
                }
            };
            // 1-in-8 arrivals are jumbo: beyond any single instance's
            // capacity (max 900 Mbps in the catalog), so the loop must
            // shed them without panicking.
            let rate = if rng.gen_bool(0.125) {
                jumbo_arrivals += 1;
                rng.gen_range(1_000.0..4_000.0)
            } else {
                rng.gen_range(1.0..60.0)
            };
            let id = next_id;
            next_id += 1;
            let flow = flow_between(src, dst, id, rate);
            live.push((id, flow));
            event(FlowEventKind::Arrival, step, id, flow)
        } else {
            let idx = rng.gen_range(0..live.len());
            let (id, flow) = live.swap_remove(idx);
            event(FlowEventKind::Departure, step, id, flow)
        };
        let report = looper.step(&ev, rec);
        shed_events += u64::from(report.shed);
        looper
            .check_ledger()
            .unwrap_or_else(|e| panic!("case {case} step {step}: ledger leak: {e}"));
        // Every so often, crash a loaded instance mid-churn.
        if step % 37 == 36 {
            let victims: Vec<_> = looper.placer().loads().keys().copied().collect();
            if !victims.is_empty() {
                let victim = victims[rng.gen_range(0..victims.len())];
                looper.handle_instance_crash(victim, rec);
                crashes += 1;
                looper
                    .check_ledger()
                    .unwrap_or_else(|e| panic!("case {case} step {step}: post-crash leak: {e}"));
            }
        }
    }
    // Drain: every remaining flow departs; the loop must come back to
    // exactly zero state with an empty ledger.
    for (n, (id, flow)) in std::mem::take(&mut live).into_iter().enumerate() {
        looper.step(&event(FlowEventKind::Departure, STEPS + n, id, flow), rec);
        looper
            .check_ledger()
            .unwrap_or_else(|e| panic!("case {case} drain {n}: ledger leak: {e}"));
    }
    assert_eq!(looper.live_count(), 0, "case {case}: live classes remain");
    assert_eq!(looper.shed_count(), 0, "case {case}: shed classes remain");
    assert_eq!(looper.instance_count(), 0, "case {case}: instances remain");
    assert!(
        looper.placer().loads().is_empty(),
        "case {case}: drained loop left ledger entries"
    );
    (shed_events, jumbo_arrivals, crashes)
}

/// The headline sweep: 24 seeded interleavings on 8-core hosts (small
/// enough that capacity exhaustion is routine), plus periodic instance
/// crashes. Never panics, never leaks, and the sweep as a whole must have
/// exercised shedding, jumbo classes and crash handling — otherwise the
/// battery is not testing what it claims.
#[test]
fn random_interleavings_never_panic_or_leak() {
    let rec = MemoryRecorder::new();
    let mut total_shed = 0u64;
    let mut total_jumbo = 0u64;
    let mut total_crashes = 0usize;
    for case in 0..CASES {
        let (shed, jumbo, crashes) = run_interleaving(case, 8, &rec);
        total_shed += shed;
        total_jumbo += jumbo;
        total_crashes += crashes;
    }
    assert!(total_jumbo > 0, "sweep generated no jumbo classes");
    assert!(
        total_shed > 0,
        "sweep never shed: NoCapacity path untested on 8-core hosts"
    );
    assert!(total_crashes > 0, "sweep never crashed an instance");
    let snap = rec.snapshot();
    assert!(snap.counter("online.jumbo_classes").unwrap_or(0) > 0);
    assert!(snap.counter("online.shed_events").unwrap_or(0) > 0);
    assert!(snap.counter("online.instance_crashes").unwrap_or(0) > 0);
}

/// Zero-core hosts: *every* placement must fail, every class must land in
/// the shed ledger, and the books must still balance at all times.
#[test]
fn no_capacity_anywhere_sheds_everything_cleanly() {
    let topo = zoo::internet2();
    let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 0);
    let mut looper = OrchestrationLoop::new(&topo, orch, OnlineConfig::default());
    let rec = MemoryRecorder::new();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x1000);
    let mut live = Vec::new();
    for step in 0..40usize {
        let src = NodeId(rng.gen_range(0usize..6));
        let dst = NodeId(rng.gen_range(6usize..12));
        let id = step as u64;
        let flow = flow_between(src, dst, id, rng.gen_range(1.0..30.0));
        live.push((id, flow));
        looper.step(&event(FlowEventKind::Arrival, step, id, flow), &rec);
        assert_eq!(looper.instance_count(), 0, "step {step}: booted on 0 cores");
        looper.check_ledger().expect("ledger stays empty and true");
    }
    assert!(looper.shed_count() > 0, "nothing was shed");
    assert!(looper.total_shed_rate_mbps() > 0.0);
    for (n, (id, flow)) in live.into_iter().enumerate() {
        looper.step(&event(FlowEventKind::Departure, 40 + n, id, flow), &rec);
    }
    assert_eq!(looper.shed_count(), 0, "shed ledger must drain with flows");
    assert_eq!(looper.live_count(), 0);
}
