//! Fuzz battery for the asynchronous southbound channel (DESIGN.md §13),
//! driven by seeded `apple_rng` streams (see `tests/README.md`).
//!
//! Random update plans from real Internet2 deployments are pushed through
//! [`SouthboundChannel`] under hostile schedules — seeded per-op latency
//! and reordering, dropped acks (a fault injector rejecting install
//! attempts), duplicate acks, phantom acks, acks behind the barrier gate,
//! and acks after completion or after the channel has failed. Every run
//! must either drain the fabric **bitwise-equal** to the synchronous
//! `apply_unchecked` of the same plan, or fail with a typed
//! [`SouthboundError`] leaving the fabric at an exact **plan prefix** —
//! never a torn or phantom state.

use apple_nfv::core::classes::ClassConfig;
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::core::rules::{snapshot_of, RuleGenConfig};
use apple_nfv::dataplane::compiler::{compile, CompilerSnapshot, RuleProgram};
use apple_nfv::dataplane::diff::{apply_batch_unchecked, diff, UpdatePlan};
use apple_nfv::dataplane::southbound::{
    apply_plan_async, InjectedAck, SouthboundChannel, SouthboundConfig, SouthboundEvent,
};
use apple_nfv::faults::{FaultInjector, ScriptedInjector};
use apple_nfv::nf::InstanceId;
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;
use apple_rng::{Rng, SeedableRng, StdRng};

/// Base seed for this file; each case perturbs it by its index.
const SEED: u64 = 0x5007_b04d;

/// Lowers a planned Internet2 deployment into a compiler snapshot.
fn internet2_snapshot(seed: u64) -> CompilerSnapshot {
    let topo = zoo::internet2();
    let tm = GravityModel::new(1_800.0, seed).base_matrix(&topo);
    let apple = Apple::plan(
        &topo,
        &tm,
        &AppleConfig {
            classes: ClassConfig {
                max_classes: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("internet2 planning is feasible");
    snapshot_of(
        &topo,
        apple.classes(),
        apple.subclasses(),
        &apple.program().assignment,
        apple.orchestrator(),
        &RuleGenConfig::default(),
    )
    .expect("planned deployments lower cleanly")
}

/// A random churn of `snap`: 1–3 sub-classes re-served by fresh
/// instances, and (half the time) one sub-class dropped entirely.
fn perturb(snap: &CompilerSnapshot, rng: &mut StdRng) -> CompilerSnapshot {
    let mut out = snap.clone();
    let fresh = snap
        .subclasses
        .iter()
        .flat_map(|s| s.instances.iter())
        .map(|i| i.0)
        .max()
        .expect("snapshot has instances")
        + 1;
    for k in 0..rng.gen_range(1u64..4) {
        let si = rng.gen_range(0..out.subclasses.len());
        let stages = out.subclasses[si].instances.len();
        let stage = rng.gen_range(0..stages);
        out.subclasses[si].instances[stage] = InstanceId(fresh + k);
    }
    if rng.gen_bool(0.5) && out.subclasses.len() > 1 {
        let si = rng.gen_range(0..out.subclasses.len());
        out.subclasses.remove(si);
    }
    out
}

/// Every fabric state a plan can legally leave behind: the starting
/// program plus each successive barrier prefix.
fn prefix_states(start: &RuleProgram, plan: &UpdatePlan) -> Vec<RuleProgram> {
    let mut states = vec![start.clone()];
    let mut cur = start.clone();
    for batch in plan.batches() {
        apply_batch_unchecked(&mut cur, batch);
        states.push(cur.clone());
    }
    states
}

/// Fault-free channels must drain every random plan bitwise-equal to the
/// synchronous apply, completing exactly the plan's barriers.
#[test]
fn random_plans_drain_bitwise_equal_to_sync_apply() {
    for case in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ case);
        let old = internet2_snapshot(300 + case);
        let new = perturb(&old, &mut rng);
        let old_prog = compile(&old);
        let new_prog = compile(&new);
        let plan = diff(&old_prog, &new_prog);
        assert!(!plan.is_empty(), "case {case}: perturbation was a no-op");

        let mut cfg = SouthboundConfig::paper(SEED ^ (0x100 + case));
        cfg.reorder_window = rng.gen_range(0usize..9);
        let mut prog = old_prog.clone();
        let report = apply_plan_async(&mut prog, &plan, cfg)
            .unwrap_or_else(|e| panic!("case {case}: fault-free drive failed: {e}"));
        assert_eq!(prog, new_prog, "case {case}: async drain drifted");
        assert_eq!(
            report.barriers,
            plan.batches().len() as u64,
            "case {case}: barrier count mismatch"
        );
        assert_eq!(report.retries, 0, "case {case}: fault-free run retried");
    }
}

/// Dropped acks (a fault injector rejecting install attempts) must
/// either retry to a bitwise-equal drain or fail with a typed error
/// leaving the fabric at an exact plan prefix — and the failure must be
/// sticky, with late acks ignored.
#[test]
fn dropped_acks_converge_or_fail_typed_with_prefix_fabric() {
    let mut converged = 0usize;
    let mut failed = 0usize;
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x200 + case));
        let old = internet2_snapshot(320 + (case % 4));
        let new = perturb(&old, &mut rng);
        let old_prog = compile(&old);
        let new_prog = compile(&new);
        let plan = diff(&old_prog, &new_prog);
        let states = prefix_states(&old_prog, &plan);

        // Escalating drop rates: low ones retry through, high ones blow
        // the attempt or time budget.
        let drop_prob = [0.2, 0.5, 0.9, 0.97][case as usize % 4];
        let injector = ScriptedInjector::new(SEED ^ (0x280 + case), 0.0, 0.0, 0, drop_prob);
        let mut chan = SouthboundChannel::with_injector(
            SouthboundConfig::paper(SEED ^ (0x240 + case)),
            injector,
        );
        let ids = chan.submit_plan(&plan);
        let mut prog = old_prog.clone();
        match chan.drive(&mut prog) {
            Ok(report) => {
                converged += 1;
                assert_eq!(prog, new_prog, "case {case}: lossy drain drifted");
                assert!(report.retries > 0 || drop_prob < 0.5, "case {case}");
            }
            Err(e) => {
                failed += 1;
                // Typed, sticky, and the fabric is an exact plan prefix.
                assert!(
                    chan.failure().is_some(),
                    "case {case}: error not recorded: {e}"
                );
                assert!(
                    states.contains(&prog),
                    "case {case}: failed fabric is not a plan prefix"
                );
                assert!(
                    chan.advance(3_600_000).is_err(),
                    "case {case}: failure must be sticky"
                );
                // Acks after the channel failed are dropped, not leaked.
                for &id in &ids {
                    assert_eq!(
                        chan.inject_ack(id, 0),
                        InjectedAck::Ignored,
                        "case {case}: post-failure ack not ignored"
                    );
                }
            }
        }
    }
    assert!(converged > 0, "no drop rate ever converged");
    assert!(failed > 0, "no drop rate ever exhausted the retry budget");
}

/// A hand-driven hostile ack schedule: early acks, duplicates, phantom
/// op indices, acks behind the barrier gate, and acks after completion.
/// The channel must classify each injection, ack every op exactly once,
/// and still drain bitwise-equal to the synchronous apply.
#[test]
fn hostile_ack_schedules_stay_idempotent_and_leak_free() {
    for case in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x300 + case));
        let old = internet2_snapshot(340 + case);
        let new = perturb(&old, &mut rng);
        let old_prog = compile(&old);
        let new_prog = compile(&new);
        let plan = diff(&old_prog, &new_prog);

        let mut chan = SouthboundChannel::new(SouthboundConfig::paper(SEED ^ (0x340 + case)));
        let ids = chan.submit_plan(&plan);
        let ops: Vec<usize> = plan.batches().iter().map(|b| b.op_count()).collect();

        // Dispatch the front barrier (zero-op barriers drain through).
        let mut prog = old_prog.clone();
        let mut done = 0usize;
        for ev in chan.advance(0).expect("fault-free channel") {
            if let SouthboundEvent::Barrier(b) = ev {
                apply_batch_unchecked(&mut prog, &b.batch);
                done += 1;
            }
        }
        let front = done;
        assert!(front < ids.len(), "case {case}: plan drained at t=0");
        assert!(ops[front] > 0, "case {case}: dispatched front has no ops");

        // Early ack: legal. Duplicate of the same op: dropped.
        assert_eq!(
            chan.inject_ack(ids[front], 0),
            InjectedAck::Acked,
            "case {case}"
        );
        assert_eq!(
            chan.inject_ack(ids[front], 0),
            InjectedAck::Duplicate,
            "case {case}"
        );
        // Phantom op index: dropped.
        assert_eq!(
            chan.inject_ack(ids[front], 99_999),
            InjectedAck::Ignored,
            "case {case}"
        );
        // Behind the barrier gate: dropped.
        if front + 1 < ids.len() {
            assert_eq!(
                chan.inject_ack(ids[front + 1], 0),
                InjectedAck::Ignored,
                "case {case}: gated barrier accepted an ack"
            );
        }
        // Unknown barrier id: dropped.
        assert_eq!(
            chan.inject_ack(u64::MAX, 0),
            InjectedAck::Ignored,
            "case {case}"
        );

        // Drain the rest, sprinkling random hostile acks between ticks.
        while !chan.is_idle() {
            for _ in 0..rng.gen_range(0usize..4) {
                let id = ids[rng.gen_range(0..ids.len())];
                let op = rng.gen_range(0usize..32);
                let _ = chan.inject_ack(id, op);
            }
            for ev in chan
                .advance(rng.gen_range(1u64..160))
                .expect("fault-free channel")
            {
                if let SouthboundEvent::Barrier(b) = ev {
                    apply_batch_unchecked(&mut prog, &b.batch);
                    done += 1;
                }
            }
        }
        // Ack after completion: dropped.
        assert_eq!(
            chan.inject_ack(ids[front], 0),
            InjectedAck::Ignored,
            "case {case}: completed barrier accepted an ack"
        );

        assert_eq!(done, ids.len(), "case {case}: barrier count mismatch");
        assert_eq!(prog, new_prog, "case {case}: hostile drain drifted");
        let stats = chan.stats();
        assert_eq!(
            stats.acks,
            plan.op_count() as u64,
            "case {case}: ops must ack exactly once (leak or phantom)"
        );
        assert!(stats.duplicate_acks >= 1, "case {case}");
        assert!(stats.ignored_acks >= 3, "case {case}");
    }
}

/// Acks arriving while an op is mid-retry (the injector rejected earlier
/// attempts) complete it out from under the retry loop — the channel
/// treats the wire as authoritative.
#[test]
fn acks_during_retry_complete_the_op() {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x400);
    let old = internet2_snapshot(360);
    let new = perturb(&old, &mut rng);
    let old_prog = compile(&old);
    let new_prog = compile(&new);
    let plan = diff(&old_prog, &new_prog);

    // Every install attempt fails: without injected acks this channel
    // would exhaust its retry budget, so a bitwise-clean drain proves the
    // injected acks were honoured.
    struct AlwaysDrop;
    impl FaultInjector for AlwaysDrop {
        fn rule_install_fails(&mut self, _switch: usize, _attempt: u32) -> bool {
            true
        }
    }
    let mut chan =
        SouthboundChannel::with_injector(SouthboundConfig::paper(SEED ^ 0x410), AlwaysDrop);
    let ids = chan.submit_plan(&plan);
    let ops: Vec<usize> = plan.batches().iter().map(|b| b.op_count()).collect();
    let mut prog = old_prog.clone();
    let mut done = vec![false; ids.len()];
    loop {
        // `advance(0)` dispatches the front barrier and surfaces any
        // completions without moving time, so no scheduled (and thus
        // doomed) install attempt ever fires.
        for ev in chan.advance(0).expect("acked channel cannot fail") {
            if let SouthboundEvent::Barrier(b) = ev {
                apply_batch_unchecked(&mut prog, &b.batch);
                let i = ids
                    .iter()
                    .position(|&id| id == b.id)
                    .expect("completed barrier was submitted");
                done[i] = true;
            }
        }
        if chan.is_idle() {
            break;
        }
        // Ack every op of the now-dispatched front barrier by hand.
        let front = done.iter().position(|&d| !d).expect("channel not idle");
        assert!(ops[front] > 0, "zero-op fronts complete inside advance");
        for op in 0..ops[front] {
            let got = chan.inject_ack(ids[front], op);
            assert_eq!(got, InjectedAck::Acked, "barrier {front} op {op}");
        }
    }
    assert_eq!(prog, new_prog, "hand-acked drain drifted");
    assert!(chan.failure().is_none(), "injected acks must avert failure");
}
