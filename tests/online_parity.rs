//! Differential battery for the online orchestration path: after **every**
//! event of a seeded arrival/departure timeline, the incrementally
//! maintained class state must be *bitwise identical* to a from-scratch
//! aggregation over the currently-live flows, and the loop's placement
//! must verify clean ([`verify_shares`]) — across seeds × three
//! evaluation topologies.
//!
//! The exactness argument (DESIGN.md §9): `IncrementalClasses` keeps each
//! pair's flows in a `BTreeMap<flow_id, rate>` and re-sums them in id
//! order on every query, and `TrafficMatrix::add` left-folds in exactly
//! that order when the matrix is rebuilt from the live flows — the same
//! f64 additions in the same order, so equality is `==`, not "within
//! epsilon".

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::online::{OnlineConfig, OrchestrationLoop};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::core::verify::verify_shares;
use apple_nfv::telemetry::NOOP;
use apple_nfv::topology::{zoo, NodeId, Topology};
use apple_nfv::traffic::arrivals::{ArrivalConfig, EventTimeline, FlowEventKind};
use apple_nfv::traffic::{Flow, TrafficMatrix};
use std::collections::BTreeMap;

/// Base seed for this file (see tests/README.md).
const SEED: u64 = 0x0a11_4e17;

/// Seeded timelines per topology.
const CASES: u64 = 2;

/// A small OD-pair set: the first four nodes each send to the next three.
/// Kept compact so the per-event differential (rebuild + re-classify +
/// verify) stays fast enough to run after all ~1k events of a case.
fn pairs_for(topo: &Topology) -> Vec<(NodeId, NodeId)> {
    let n = topo.graph.node_count();
    assert!(n >= 7, "evaluation topologies all have >= 7 switches");
    let mut pairs = Vec::new();
    for s in 0..4 {
        for d in 4..7 {
            pairs.push((NodeId(s), NodeId(d)));
        }
    }
    pairs
}

fn online_config() -> OnlineConfig {
    OnlineConfig {
        class_cfg: ClassConfig::default(),
        // Short period so the differential also covers states right after
        // a warm-started global re-solve and its re-mapping.
        resolve_every: 150,
        max_churn: 64,
        ..Default::default()
    }
}

/// Rebuilds the traffic matrix from scratch from the live flows, in
/// flow-id order — the same left-fold order the incremental aggregate
/// sums in, which is what makes the comparison exact.
fn batch_matrix(topo: &Topology, live: &BTreeMap<u64, Flow>) -> TrafficMatrix {
    let mut tm = TrafficMatrix::zeros(topo.graph.node_count());
    for flow in live.values() {
        tm.add(flow.ingress, flow.egress, flow.rate_mbps);
    }
    tm
}

/// The tentpole differential: stream every event, and after each one
/// compare the incremental class set against `ClassSet::build` over the
/// rebuilt matrix — exact equality — and run the share verifier.
#[test]
fn incremental_classes_match_batch_after_every_event() {
    for (t, topo) in [zoo::internet2(), zoo::geant(), zoo::univ1()]
        .iter()
        .enumerate()
    {
        let pairs = pairs_for(topo);
        for case in 0..CASES {
            let arrivals = ArrivalConfig {
                arrival_rate: 1.0,
                mean_duration_secs: 8.0,
                mean_rate_mbps: 10.0,
                seed: SEED ^ (0x10 * t as u64 + case),
            };
            let timeline = EventTimeline::generate(&pairs, &arrivals, 18.0);
            assert!(!timeline.is_empty(), "topology {t} case {case}: no events");
            let cfg = online_config();
            let orch = ResourceOrchestrator::with_uniform_hosts(topo, 64);
            let mut looper = OrchestrationLoop::new(topo, orch, cfg.clone());
            let mut live: BTreeMap<u64, Flow> = BTreeMap::new();
            for (n, event) in timeline.events().iter().enumerate() {
                looper.step(event, &NOOP);
                match event.kind {
                    FlowEventKind::Arrival => {
                        live.insert(event.flow_id, event.flow);
                    }
                    FlowEventKind::Departure => {
                        live.remove(&event.flow_id);
                    }
                }
                let batch = ClassSet::build(topo, &batch_matrix(topo, &live), &cfg.class_cfg);
                let incremental = looper.incremental().to_class_set();
                assert_eq!(
                    batch.classes(),
                    incremental.classes(),
                    "topology {t} case {case}: class state diverged after event {n}"
                );
                let (classes, handler) = looper.snapshot();
                let violations = verify_shares(&classes, &handler, looper.orchestrator(), 1e-6);
                assert!(
                    violations.is_empty(),
                    "topology {t} case {case} event {n}: verify_shares found {violations:?}"
                );
                looper
                    .check_ledger()
                    .unwrap_or_else(|e| panic!("topology {t} case {case} event {n}: {e}"));
            }
            assert!(live.is_empty(), "topology {t} case {case}: did not drain");
            assert_eq!(looper.live_count(), 0, "topology {t} case {case}");
            assert_eq!(looper.shed_count(), 0, "topology {t} case {case}");
            assert_eq!(looper.instance_count(), 0, "topology {t} case {case}");
            assert_eq!(looper.incremental().active_flows(), 0);
        }
    }
}

/// Same seed → byte-identical drain trajectory (the online path inherits
/// the repo-wide determinism contract).
#[test]
fn online_run_is_deterministic_per_seed() {
    let topo = zoo::internet2();
    let pairs = pairs_for(&topo);
    let arrivals = ArrivalConfig {
        arrival_rate: 1.0,
        mean_duration_secs: 8.0,
        mean_rate_mbps: 10.0,
        seed: SEED ^ 0x100,
    };
    let timeline = EventTimeline::generate(&pairs, &arrivals, 18.0);
    let run = || {
        let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
        let mut looper = OrchestrationLoop::new(&topo, orch, online_config());
        let mut trace = Vec::new();
        for event in timeline.events() {
            let step = looper.step(event, &NOOP);
            trace.push((step.placed, step.launched, step.retired, step.shed));
        }
        (trace, looper.resolves(), looper.events_processed())
    };
    assert_eq!(run(), run());
}
