//! End-to-end test of operator-specified policies (§I's motivating
//! example): http traffic follows `firewall → IDS → proxy`, dns follows
//! `firewall`, everything else follows the default `NAT → firewall` — all
//! between the **same OD pairs**, distinguished in the data plane by
//! transport predicates.

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::engine::{EngineConfig, OptimizationEngine};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::core::policy_spec::PolicySpec;
use apple_nfv::core::rules::generate;
use apple_nfv::core::subclass::{SplitStrategy, SubclassPlan};
use apple_nfv::dataplane::packet::{HostTag, Packet};
use apple_nfv::nf::NfType;
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;

struct PolicyDeployment {
    classes: ClassSet,
    program: apple_nfv::core::rules::DataPlaneProgram,
    orch: ResourceOrchestrator,
}

fn deploy() -> PolicyDeployment {
    deploy_with(PolicySpec::example())
}

fn deploy_with(spec: PolicySpec) -> PolicyDeployment {
    let topo = zoo::internet2();
    let tm = GravityModel::new(1_200.0, 101).base_matrix(&topo);
    let classes = ClassSet::build_with_policies(
        &topo,
        &tm,
        &spec,
        &ClassConfig {
            max_classes: 40,
            ..Default::default()
        },
    );
    let mut orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
    let placement = OptimizationEngine::new(EngineConfig::default())
        .place(&classes, &orch)
        .expect("policy-driven placement feasible");
    let plan = SubclassPlan::derive(&classes, &placement, SplitStrategy::PrefixSplit);
    let program = generate(&topo, &classes, &plan, &placement, &mut orch).expect("rule generation");
    PolicyDeployment {
        classes,
        program,
        orch,
    }
}

/// Walks a packet along the class's path and returns the NF sequence it
/// traversed.
fn walked_chain(d: &PolicyDeployment, class_idx: usize, packet: Packet) -> Vec<NfType> {
    let class = &d.classes.classes()[class_idx];
    let rec = d
        .program
        .walker
        .walk(packet, &class.path)
        .expect("programmed data plane walks cleanly");
    assert_eq!(rec.packet.host_tag, HostTag::Fin, "chain incomplete");
    rec.instances
        .iter()
        .map(|&id| d.orch.instance(id).expect("instances exist").nf())
        .collect()
}

#[test]
fn same_pair_traffic_splits_by_port() {
    let d = deploy();
    // Find an OD pair that has both an http class and a default class.
    let http_idx = d
        .classes
        .iter()
        .position(|c| c.dst_ports.contains(&80))
        .expect("http class present");
    let http_class = &d.classes.classes()[http_idx];
    let pair = http_class.od_pair();
    let default_idx = d
        .classes
        .iter()
        .position(|c| c.od_pair() == pair && c.dst_ports.is_empty() && c.proto.is_none())
        .expect("default class for the same pair");

    // An http packet (TCP/80) follows firewall -> IDS -> proxy.
    let http_packet = Packet::new(
        http_class.src_prefix.0 | 5,
        http_class.dst_prefix.0 | 5,
        50_000,
        80,
        6,
    );
    assert_eq!(
        walked_chain(&d, http_idx, http_packet),
        vec![NfType::Firewall, NfType::Ids, NfType::Proxy]
    );

    // An ssh packet (TCP/22) from the *same hosts* follows the default
    // NAT -> firewall.
    let ssh_packet = Packet::new(
        http_class.src_prefix.0 | 5,
        http_class.dst_prefix.0 | 5,
        50_001,
        22,
        6,
    );
    assert_eq!(
        walked_chain(&d, default_idx, ssh_packet),
        vec![NfType::Nat, NfType::Firewall]
    );
}

#[test]
fn udp_dns_distinguished_by_proto() {
    // Weight dns heavily so its classes survive heaviest-first truncation.
    let d = deploy_with(
        PolicySpec::parse(
            "policy dns 2.0: proto 17, dst_port 53 => firewall\n\
             default => nat -> firewall",
        )
        .unwrap(),
    );
    let dns_idx = d
        .classes
        .iter()
        .position(|c| c.proto == Some(17) && c.dst_ports.contains(&53))
        .expect("dns class present");
    let dns_class = &d.classes.classes()[dns_idx];
    // UDP/53 → firewall only.
    let dns_packet = Packet::new(
        dns_class.src_prefix.0 | 7,
        dns_class.dst_prefix.0 | 7,
        5_353,
        53,
        17,
    );
    assert_eq!(
        walked_chain(&d, dns_idx, dns_packet),
        vec![NfType::Firewall]
    );

    // TCP/53 from the same pair is NOT dns: it must take the default
    // chain.
    let pair = dns_class.od_pair();
    let default_idx = d
        .classes
        .iter()
        .position(|c| c.od_pair() == pair && c.dst_ports.is_empty() && c.proto.is_none())
        .expect("default class for the same pair");
    let tcp53 = Packet::new(
        dns_class.src_prefix.0 | 7,
        dns_class.dst_prefix.0 | 7,
        5_353,
        53,
        6,
    );
    assert_eq!(
        walked_chain(&d, default_idx, tcp53),
        vec![NfType::Nat, NfType::Firewall]
    );
}

#[test]
fn specific_catch_all_beats_wildcard_exact_rules() {
    // Regression: when the http class is compressed to a catch-all rule
    // while the same pair's default class keeps exact rules, a port-80
    // packet must still take the http chain — transport specificity has to
    // dominate the exact/catch-all priority split.
    let d = deploy_with(
        PolicySpec::parse(
            "policy http 1.0: dst_port 80 => firewall -> ids -> proxy\n\
             default => nat -> firewall",
        )
        .unwrap(),
    );
    for (i, class) in d.classes.iter().enumerate() {
        if !class.dst_ports.contains(&80) {
            continue;
        }
        // Any source host in the /24, any port-80 packet: http chain.
        for host in [1u32, 100, 200, 254] {
            let p = Packet::new(
                class.src_prefix.0 | host,
                class.dst_prefix.0 | 9,
                40_000,
                80,
                6,
            );
            let chain = walked_chain(&d, i, p);
            assert_eq!(
                chain,
                vec![NfType::Firewall, NfType::Ids, NfType::Proxy],
                "host {host} of {} misclassified",
                class.id
            );
        }
    }
}

#[test]
fn policy_classes_have_valid_placement() {
    let d = deploy();
    // Every class's chain is fully placeable on its path (structural
    // policy enforcement) and all four policy kinds survived truncation.
    let mut kinds = std::collections::BTreeSet::new();
    for c in &d.classes {
        kinds.insert(c.chain.nfs().to_vec());
    }
    assert!(kinds.len() >= 3, "policy diversity lost: {}", kinds.len());
}
