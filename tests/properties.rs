//! Randomised (deterministically seeded) tests for the three Table I
//! guarantees, over generated topologies and traffic matrices. Seeding
//! follows the convention in `tests/README.md`.
//!
//! For every planned deployment:
//! 1. **Policy enforcement** — every class's representative packets
//!    traverse exactly the class's chain, in order;
//! 2. **Interference freedom** — the switch trajectory equals the routing
//!    path, always;
//! 3. **Isolation** — committed host resources are exactly the sum of
//!    per-instance requirement vectors (no sharing).
//!
//! Plus the Table III compiler soundness property: patching `compiled(a)`
//! with `diff(compiled(a), compiled(b))` equals `compiled(b)` rule for
//! rule, in both directions (DESIGN.md §10).

use apple_nfv::core::classes::ClassConfig;
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::core::engine::EngineError;
use apple_nfv::dataplane::packet::{HostTag, Packet};
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;
use apple_rng::{Rng, SeedableRng, StdRng};

/// Base seed for this file; each case perturbs it by its index.
const SEED: u64 = 0x7ab1_e001;

fn plan_random(
    nodes: usize,
    degree: f64,
    topo_seed: u64,
    tm_seed: u64,
    classes: usize,
) -> Result<Apple, EngineError> {
    let topo = zoo::random_connected(nodes, degree, topo_seed);
    let tm = GravityModel::new(1_500.0, tm_seed).base_matrix(&topo);
    Apple::plan(
        &topo,
        &tm,
        &AppleConfig {
            classes: ClassConfig {
                max_classes: classes,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

#[test]
fn three_properties_hold_on_random_networks() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ case);
        let nodes = rng.gen_range(4usize..14);
        let degree = rng.gen_range(2.0..3.5);
        let topo_seed = rng.gen_range(0u64..1_000);
        let tm_seed = rng.gen_range(0u64..1_000);
        let host_octet = rng.gen_range(1u32..255);

        let apple = match plan_random(nodes, degree, topo_seed, tm_seed, 10) {
            Ok(a) => a,
            // Tiny random topologies can be genuinely infeasible; that is
            // not a property violation.
            Err(EngineError::Infeasible) => continue,
            Err(e) => panic!("case {case}: plan failed: {e}"),
        };
        for class in apple.classes() {
            let p = Packet::new(
                class.src_prefix.0 | host_octet,
                class.dst_prefix.0 | 1,
                9_999,
                443,
                6,
            );
            let rec = apple
                .program()
                .walker
                .walk(p, &class.path)
                .unwrap_or_else(|e| panic!("case {case}: walk failed: {e}"));

            // 1. Policy enforcement.
            let nfs: Vec<_> = rec
                .instances
                .iter()
                .filter_map(|&id| apple.orchestrator().instance(id).map(|i| i.nf()))
                .collect();
            assert_eq!(
                &nfs[..],
                class.chain.nfs(),
                "case {case}: class {} chain violated",
                class.id
            );
            assert_eq!(rec.packet.host_tag, HostTag::Fin);

            // 2. Interference freedom.
            let expect: Vec<usize> = class.path.iter().map(|n| n.0).collect();
            assert_eq!(
                rec.switches, expect,
                "case {case}: path changed for {}",
                class.id
            );
        }

        // 3. Isolation.
        let committed: u32 = apple
            .orchestrator()
            .hosts()
            .values()
            .map(|h| h.used.cores)
            .sum();
        let per_instance: u32 = apple
            .orchestrator()
            .instances()
            .map(|i| i.spec().cores)
            .sum();
        assert_eq!(
            committed, per_instance,
            "case {case}: resource sharing detected"
        );
    }
}

#[test]
fn subclass_fractions_partition_every_class() {
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x100 + case));
        let topo_seed = rng.gen_range(0u64..500);
        let tm_seed = rng.gen_range(0u64..500);
        let apple = match plan_random(8, 2.5, topo_seed, tm_seed, 8) {
            Ok(a) => a,
            Err(_) => continue,
        };
        for class in apple.classes() {
            let subs = apple.subclasses().of_class(class.id);
            let total: f64 = subs.iter().map(|s| s.fraction()).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "case {case}: class {} covered {total}",
                class.id
            );
            // Prefix covers are disjoint inside the class /24.
            let mut covered = [false; 256];
            for s in &subs {
                for &(addr, len) in &s.prefixes {
                    let start = (addr & 0xff) as usize;
                    let count = 1usize << (32 - len);
                    #[allow(clippy::needless_range_loop)] // asserting per index
                    for u in start..start + count {
                        assert!(
                            !covered[u],
                            "case {case}: overlapping prefixes in {}",
                            class.id
                        );
                        covered[u] = true;
                    }
                }
            }
            assert!(
                covered.iter().all(|&b| b),
                "case {case}: class {} /24 not covered",
                class.id
            );
        }
    }
}

/// Table III compiler soundness: for any two deployments `a`, `b` of the
/// same topology, applying `diff(compiled(a), compiled(b))` to
/// `compiled(a)` yields `compiled(b)` **rule for rule** — the incremental
/// path can never drift from a full recompile.
#[test]
fn incremental_patch_equals_full_compile() {
    use apple_nfv::core::rules::{snapshot_of, RuleGenConfig};
    use apple_nfv::dataplane::compiler::compile;
    use apple_nfv::dataplane::diff::diff;

    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x300 + case));
        let nodes = rng.gen_range(5usize..12);
        let degree = rng.gen_range(2.0..3.5);
        let topo_seed = rng.gen_range(0u64..1_000);
        let tm_a = rng.gen_range(0u64..1_000);
        let tm_b = rng.gen_range(0u64..1_000);
        let topo = zoo::random_connected(nodes, degree, topo_seed);
        let snap = |tm_seed| match plan_random(nodes, degree, topo_seed, tm_seed, 10) {
            Ok(apple) => Some(
                snapshot_of(
                    &topo,
                    apple.classes(),
                    apple.subclasses(),
                    &apple.program().assignment,
                    apple.orchestrator(),
                    &RuleGenConfig::default(),
                )
                .expect("planned deployments lower cleanly"),
            ),
            // Tiny random topologies can be genuinely infeasible.
            Err(EngineError::Infeasible) => None,
            Err(e) => panic!("case {case}: plan failed: {e}"),
        };
        let (Some(a), Some(b)) = (snap(tm_a), snap(tm_b)) else {
            continue;
        };
        let pa = compile(&a);
        let pb = compile(&b);
        let mut patched = pa.clone();
        diff(&pa, &pb).apply(&mut patched, None).unwrap();
        assert_eq!(patched, pb, "case {case}: patch drifted from recompile");
        // And back: the reverse plan restores `a` exactly.
        diff(&pb, &pa).apply(&mut patched, None).unwrap();
        assert_eq!(patched, pa, "case {case}: reverse patch left residue");
    }
}

/// Walk-engine equivalence on *planned* programs: the compiled fast path
/// must walk every conformance probe of a real deployment to the same
/// record (or error) as the linear scan, and the delta-patched compiled
/// form of an `a → b` transition must equal compiling `b` from scratch.
/// The random-program version of this property lives in
/// `crates/dataplane/tests/fuzz_walk.rs`; this one pins it on programs
/// the actual control plane emits (DESIGN.md §12).
#[test]
fn walk_engines_agree_on_planned_programs() {
    use apple_nfv::core::rules::{snapshot_of, RuleGenConfig};
    use apple_nfv::dataplane::compiler::compile;
    use apple_nfv::dataplane::diff::diff;
    use apple_nfv::dataplane::fastpath::CompiledProgram;
    use apple_nfv::dataplane::walk::WalkEngine;
    use apple_nfv::sim::packet_replay::conformance_probes;

    for case in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x600 + case));
        let nodes = rng.gen_range(5usize..12);
        let degree = rng.gen_range(2.0..3.5);
        let topo_seed = rng.gen_range(0u64..1_000);
        let tm_a = rng.gen_range(0u64..1_000);
        let tm_b = rng.gen_range(0u64..1_000);
        let topo = zoo::random_connected(nodes, degree, topo_seed);
        let snap = |tm_seed| match plan_random(nodes, degree, topo_seed, tm_seed, 10) {
            Ok(apple) => Some(
                snapshot_of(
                    &topo,
                    apple.classes(),
                    apple.subclasses(),
                    &apple.program().assignment,
                    apple.orchestrator(),
                    &RuleGenConfig::default(),
                )
                .expect("planned deployments lower cleanly"),
            ),
            Err(EngineError::Infeasible) => None,
            Err(e) => panic!("case {case}: plan failed: {e}"),
        };
        let (Some(a), Some(b)) = (snap(tm_a), snap(tm_b)) else {
            continue;
        };
        let pa = compile(&a);
        let pb = compile(&b);
        let walker = pa.walker();
        let fast = CompiledProgram::new(&pa);
        for probe in conformance_probes(&a, &b) {
            assert_eq!(
                walker.walk(probe.packet, &probe.path),
                fast.walk(probe.packet, &probe.path),
                "case {case}: engines diverged on {}",
                probe.label
            );
        }
        let mut patched = pa.clone();
        let mut fast = fast;
        for batch in diff(&pa, &pb).batches() {
            apple_nfv::dataplane::diff::apply_batch_unchecked(&mut patched, batch);
            fast.rebuild_delta(batch);
        }
        assert_eq!(
            fast,
            CompiledProgram::new(&pb),
            "case {case}: delta-patched fast path drifted from recompiling b"
        );
    }
}

#[test]
fn capacity_holds_after_rounding() {
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x200 + case));
        let topo_seed = rng.gen_range(0u64..500);
        let tm_seed = rng.gen_range(0u64..500);
        let apple = match plan_random(10, 2.5, topo_seed, tm_seed, 12) {
            Ok(a) => a,
            Err(_) => continue,
        };
        // No instance is assigned more than its Table IV capacity.
        let mut seen = std::collections::BTreeSet::new();
        for (_, &id) in apple.program().assignment.entries() {
            seen.insert(id);
        }
        for id in seen {
            let load = apple.program().assignment.load_mbps(id);
            let cap = apple
                .orchestrator()
                .instance(id)
                .expect("assigned instances exist")
                .spec()
                .capacity_mbps;
            // Sub-class fractions are quantised to 1/256 and packed
            // best-fit; fragmentation can overflow an instance by a sliver,
            // far inside the 15 % headroom below the overload threshold.
            assert!(
                load <= cap * 1.02,
                "case {case}: instance {id} loaded {load} > {cap}"
            );
        }
    }
}

/// Southbound ack-set exactness (DESIGN.md §13): for any random plan and
/// any reorder window, every [`CompletedBarrier`] the channel emits has
/// an `ack_order` that is a **permutation of exactly its op set** — no op
/// missing, none duplicated, no phantom index — even while hostile acks
/// are injected between ticks. Summed over the run, the channel acks
/// exactly `plan.op_count()` ops and the drained fabric equals the
/// synchronous apply.
#[test]
fn completed_barriers_ack_exactly_their_op_set() {
    use apple_nfv::core::rules::{snapshot_of, RuleGenConfig};
    use apple_nfv::dataplane::compiler::compile;
    use apple_nfv::dataplane::diff::{apply_batch_unchecked, diff};
    use apple_nfv::dataplane::southbound::{SouthboundChannel, SouthboundConfig, SouthboundEvent};

    for case in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x700 + case));
        let nodes = rng.gen_range(5usize..12);
        let degree = rng.gen_range(2.0..3.5);
        let topo_seed = rng.gen_range(0u64..1_000);
        let tm_a = rng.gen_range(0u64..1_000);
        let tm_b = rng.gen_range(0u64..1_000);
        let topo = zoo::random_connected(nodes, degree, topo_seed);
        let snap = |tm_seed| match plan_random(nodes, degree, topo_seed, tm_seed, 10) {
            Ok(apple) => Some(
                snapshot_of(
                    &topo,
                    apple.classes(),
                    apple.subclasses(),
                    &apple.program().assignment,
                    apple.orchestrator(),
                    &RuleGenConfig::default(),
                )
                .expect("planned deployments lower cleanly"),
            ),
            // Tiny random topologies can be genuinely infeasible.
            Err(EngineError::Infeasible) => None,
            Err(e) => panic!("case {case}: plan failed: {e}"),
        };
        let (Some(a), Some(b)) = (snap(tm_a), snap(tm_b)) else {
            continue;
        };
        let pa = compile(&a);
        let pb = compile(&b);
        let plan = diff(&pa, &pb);

        let mut cfg = SouthboundConfig::paper(SEED ^ (0x780 + case));
        cfg.reorder_window = rng.gen_range(0usize..9);
        let mut chan = SouthboundChannel::new(cfg);
        let ids = chan.submit_plan(&plan);
        let mut prog = pa.clone();
        let mut completed = 0usize;
        while !chan.is_idle() {
            // Hostile acks between ticks: random (barrier, op) pairs the
            // channel must classify without ever corrupting an ack set.
            for _ in 0..rng.gen_range(0usize..4) {
                let id = ids[rng.gen_range(0..ids.len().max(1))];
                let _ = chan.inject_ack(id, rng.gen_range(0usize..24));
            }
            for ev in chan
                .advance(rng.gen_range(1u64..160))
                .expect("fault-free southbound channel cannot fail")
            {
                if let SouthboundEvent::Barrier(done) = ev {
                    let mut acked = done.ack_order.clone();
                    acked.sort_unstable();
                    let want: Vec<usize> = (0..done.batch.op_count()).collect();
                    assert_eq!(
                        acked, want,
                        "case {case}: barrier {} ack set is not exactly its op set",
                        done.id
                    );
                    apply_batch_unchecked(&mut prog, &done.batch);
                    completed += 1;
                }
            }
        }
        assert_eq!(completed, plan.batches().len(), "case {case}");
        assert_eq!(prog, pb, "case {case}: drained fabric drifted");
        assert_eq!(
            chan.stats().acks,
            plan.op_count() as u64,
            "case {case}: ops must ack exactly once across the run"
        );
    }
}
