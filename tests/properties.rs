//! Property-based tests for the three Table I guarantees, over randomly
//! generated topologies and traffic matrices.
//!
//! For every planned deployment:
//! 1. **Policy enforcement** — every class's representative packets
//!    traverse exactly the class's chain, in order;
//! 2. **Interference freedom** — the switch trajectory equals the routing
//!    path, always;
//! 3. **Isolation** — committed host resources are exactly the sum of
//!    per-instance requirement vectors (no sharing).

use apple_nfv::core::classes::ClassConfig;
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::core::engine::EngineError;
use apple_nfv::dataplane::packet::{HostTag, Packet};
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;
use proptest::prelude::*;

fn plan_random(
    nodes: usize,
    degree: f64,
    topo_seed: u64,
    tm_seed: u64,
    classes: usize,
) -> Result<Apple, EngineError> {
    let topo = zoo::random_connected(nodes, degree, topo_seed);
    let tm = GravityModel::new(1_500.0, tm_seed).base_matrix(&topo);
    Apple::plan(
        &topo,
        &tm,
        &AppleConfig {
            classes: ClassConfig {
                max_classes: classes,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn three_properties_hold_on_random_networks(
        nodes in 4usize..14,
        degree in 2.0f64..3.5,
        topo_seed in 0u64..1_000,
        tm_seed in 0u64..1_000,
        host_octet in 1u32..255,
    ) {
        let apple = match plan_random(nodes, degree, topo_seed, tm_seed, 10) {
            Ok(a) => a,
            // Tiny random topologies can be genuinely infeasible; that is
            // not a property violation.
            Err(EngineError::Infeasible) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("plan failed: {e}"))),
        };
        for class in apple.classes() {
            let p = Packet::new(
                class.src_prefix.0 | host_octet,
                class.dst_prefix.0 | 1,
                9_999,
                443,
                6,
            );
            let rec = apple
                .program()
                .walker
                .walk(p, &class.path)
                .map_err(|e| TestCaseError::fail(format!("walk failed: {e}")))?;

            // 1. Policy enforcement.
            let nfs: Vec<_> = rec
                .instances
                .iter()
                .filter_map(|&id| apple.orchestrator().instance(id).map(|i| i.nf()))
                .collect();
            prop_assert_eq!(
                &nfs[..], class.chain.nfs(),
                "class {} chain violated", class.id
            );
            prop_assert_eq!(rec.packet.host_tag, HostTag::Fin);

            // 2. Interference freedom.
            let expect: Vec<usize> = class.path.iter().map(|n| n.0).collect();
            prop_assert_eq!(rec.switches, expect, "path changed for {}", class.id);
        }

        // 3. Isolation.
        let committed: u32 = apple
            .orchestrator()
            .hosts()
            .values()
            .map(|h| h.used.cores)
            .sum();
        let per_instance: u32 = apple
            .orchestrator()
            .instances()
            .map(|i| i.spec().cores)
            .sum();
        prop_assert_eq!(committed, per_instance, "resource sharing detected");
    }

    #[test]
    fn subclass_fractions_partition_every_class(
        topo_seed in 0u64..500,
        tm_seed in 0u64..500,
    ) {
        let apple = match plan_random(8, 2.5, topo_seed, tm_seed, 8) {
            Ok(a) => a,
            Err(_) => return Ok(()),
        };
        for class in apple.classes() {
            let subs = apple.subclasses().of_class(class.id);
            let total: f64 = subs.iter().map(|s| s.fraction()).sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "class {} covered {total}", class.id);
            // Prefix covers are disjoint inside the class /24.
            let mut covered = [false; 256];
            for s in &subs {
                for &(addr, len) in &s.prefixes {
                    let start = (addr & 0xff) as usize;
                    let count = 1usize << (32 - len);
                    #[allow(clippy::needless_range_loop)] // asserting per index
                    for u in start..start + count {
                        prop_assert!(!covered[u], "overlapping prefixes in {}", class.id);
                        covered[u] = true;
                    }
                }
            }
            prop_assert!(covered.iter().all(|&b| b), "class {} /24 not covered", class.id);
        }
    }

    #[test]
    fn capacity_holds_after_rounding(
        topo_seed in 0u64..500,
        tm_seed in 0u64..500,
    ) {
        let apple = match plan_random(10, 2.5, topo_seed, tm_seed, 12) {
            Ok(a) => a,
            Err(_) => return Ok(()),
        };
        // No instance is assigned more than its Table IV capacity.
        let mut seen = std::collections::BTreeSet::new();
        for (_, &id) in apple.program().assignment.entries() {
            seen.insert(id);
        }
        for id in seen {
            let load = apple.program().assignment.load_mbps(id);
            let cap = apple
                .orchestrator()
                .instance(id)
                .expect("assigned instances exist")
                .spec()
                .capacity_mbps;
            // Sub-class fractions are quantised to 1/256 and packed
            // best-fit; fragmentation can overflow an instance by a sliver,
            // far inside the 15 % headroom below the overload threshold.
            prop_assert!(load <= cap * 1.02, "instance {id} loaded {load} > {cap}");
        }
    }
}
