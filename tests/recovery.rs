//! Crash-recovery chaos battery for the journaled controller
//! (DESIGN.md §11).
//!
//! The battery enumerates every durability site a seeded timeline visits
//! — journal appends, snapshot writes, data-plane barrier submissions,
//! and southbound barrier acks — and, for a
//! sampled set of ≥200 (timeline, crash-point) pairs, kills the
//! controller exactly there (alternating clean kills and torn-write
//! kills), then proves the full recovery contract:
//!
//! 1. `recover` truncates any torn tail, restores the newest snapshot,
//!    and redo-replays the intent suffix;
//! 2. `reconcile` repairs the surviving switch fabric up to the recovered
//!    intent through the make-before-break diff planner;
//! 3. the repair is interference-free per the packet-level
//!    `repair_conformance` battery (bitwise-old / bitwise-new /
//!    chain-consistent at every repair barrier);
//! 4. resuming the recovered controller over the remainder of the script
//!    converges **bitwise** to a never-crashed twin (canonical state
//!    encoding, floats compared by bit pattern), with a clean residual
//!    ledger and clean share verification;
//! 5. pinned fixture files freeze the journal and snapshot wire formats.

use std::panic::{catch_unwind, AssertUnwindSafe};

use apple_nfv::core::online::{OnlineConfig, OrchestrationLoop};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::core::recovery::{
    encode_state, reconcile, recover, state_digest, JournaledLoop, Record, RecoveryConfig,
    RecoverySetup, SharedFabric,
};
use apple_nfv::core::verify::verify_shares;
use apple_nfv::faults::crash::{install_quiet_kill_hook, kill_of};
use apple_nfv::faults::{CrashPoint, CrashSite};
use apple_nfv::journal::{Journal, MemStore, SharedMemStore};
use apple_nfv::nf::InstanceId;
use apple_nfv::sim::repair_conformance;
use apple_nfv::telemetry::{MemoryRecorder, NOOP};
use apple_nfv::topology::{zoo, NodeId};
use apple_nfv::traffic::arrivals::{ArrivalConfig, EventTimeline, FlowEvent};

/// Base seed for this file (see tests/README.md).
const SEED: u64 = 0x4ec0_7e41;

/// Timelines in the sweep; each contributes an even sample of its crash
/// ordinals so the battery covers early, mid, and late crash points.
const TIMELINE_SEEDS: [u64; 4] = [SEED, SEED ^ 1, SEED ^ 2, SEED ^ 3];

/// Crash-point pairs sampled per timeline (4 × 55 = 220 ≥ 200).
const PAIRS_PER_TIMELINE: u64 = 55;

/// Inject a scripted instance crash before every 17th event (when any
/// instance is running) so recovery also covers the out-of-band
/// `CrashIntent` path.
const INSTANCE_CRASH_EVERY: usize = 17;

fn setup() -> RecoverySetup {
    RecoverySetup {
        topo: zoo::internet2(),
        cfg: OnlineConfig {
            resolve_every: 40,
            ..Default::default()
        },
        recovery: RecoveryConfig { snapshot_every: 24 },
        host_cores: 64,
    }
}

fn events(seed: u64) -> Vec<FlowEvent> {
    let pairs = vec![
        (NodeId(0), NodeId(5)),
        (NodeId(2), NodeId(6)),
        (NodeId(1), NodeId(7)),
    ];
    let cfg = ArrivalConfig {
        seed,
        ..ArrivalConfig::default()
    };
    EventTimeline::generate(&pairs, &cfg, 14.0)
        .events()
        .to_vec()
}

/// One scripted controller action. The script is frozen **before** any
/// journaled run (via a dry run), so the crashed run, the recovery
/// replay, the post-recovery resume, and the never-crashed twin all apply
/// byte-identical action sequences — each action is exactly one journal
/// intent, so `JournaledLoop::seq` is the resume cursor.
#[derive(Clone)]
enum Action {
    Step(FlowEvent),
    Crash(InstanceId),
}

fn build_script(s: &RecoverySetup, evs: &[FlowEvent]) -> Vec<Action> {
    let mut cfg = s.cfg.clone();
    cfg.compile_rules = true;
    let orch = ResourceOrchestrator::with_uniform_hosts(&s.topo, s.host_cores);
    let mut looper = OrchestrationLoop::new(&s.topo, orch, cfg);
    let mut script = Vec::new();
    for (i, e) in evs.iter().enumerate() {
        if i > 0 && i % INSTANCE_CRASH_EVERY == 0 {
            if let Some(id) = looper.orchestrator().instances().map(|v| v.id()).min() {
                looper.handle_instance_crash(id, &NOOP);
                script.push(Action::Crash(id));
            }
        }
        looper.step(e, &NOOP);
        script.push(Action::Step(e.clone()));
    }
    script
}

/// Apply `script[from..]` to a journaled loop. Panics propagate (that is
/// the point: an injected kill unwinds out of here).
fn run_script<S: apple_nfv::journal::JournalStore + 'static>(
    jl: &mut JournaledLoop<S>,
    script: &[Action],
    from: usize,
) {
    for action in &script[from..] {
        match action {
            Action::Step(e) => {
                jl.step(e, &NOOP)
                    .expect("in-memory journal append cannot fail");
            }
            Action::Crash(id) => {
                jl.crash_instance(*id, &NOOP)
                    .expect("in-memory journal append cannot fail");
            }
        }
    }
}

/// Runs the full script uninterrupted and returns the twin's canonical
/// final state plus the number of durability sites the run visits.
fn twin_and_sites(s: &RecoverySetup, script: &[Action]) -> (Vec<u8>, u64) {
    let crash = CrashPoint::never();
    let mut twin = JournaledLoop::new(s, SharedMemStore::new(), SharedFabric::new(), crash.clone());
    run_script(&mut twin, script, 0);
    (encode_state(twin.inner()), crash.visited())
}

struct PairOutcome {
    site: CrashSite,
    torn_bytes: u64,
    replayed: u64,
    repaired: bool,
    unacked: u64,
}

/// One (timeline, crash-point) pair: crash, recover, reconcile, prove
/// conformance, resume, and compare bitwise against the twin.
fn run_pair(
    s: &RecoverySetup,
    script: &[Action],
    twin_final: &[u8],
    ordinal: u64,
    torn: bool,
    label: &str,
) -> PairOutcome {
    let store = SharedMemStore::new();
    let fabric = SharedFabric::new();
    let crash = if torn {
        CrashPoint::at_torn(ordinal, SEED ^ ordinal)
    } else {
        CrashPoint::at(ordinal)
    };
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let mut jl = JournaledLoop::new(s, store.clone(), fabric.clone(), crash);
        run_script(&mut jl, script, 0);
    }))
    .expect_err("crash point inside the visited range must fire");
    let kill = kill_of(caught.as_ref()).unwrap_or_else(|| panic!("{label}: panic was not a kill"));
    assert_eq!(kill.ordinal, ordinal, "{label}: wrong site fired");

    // The controller is gone; the store and fabric survived. Recover.
    let rec = MemoryRecorder::new();
    let (mut recovered, report) =
        recover(s, store, fabric.clone(), &rec).unwrap_or_else(|e| panic!("{label}: {e}"));
    assert!(
        !torn || kill.site != CrashSite::JournalAppend || report.torn_truncated_bytes > 0,
        "{label}: torn kill on an append must leave a truncatable tail"
    );
    assert!(
        !matches!(
            kill.site,
            CrashSite::DataplaneBarrier | CrashSite::SouthboundAck
        ) || report.unacked_barriers >= 1,
        "{label}: a kill between barrier submit and ack must leave an \
         unacked barrier in the journal"
    );

    // Reconcile the surviving fabric with the recovered intent, and prove
    // the repair interference-free at packet level.
    let rr = reconcile(&recovered, &rec);
    assert_eq!(
        &fabric.program(),
        recovered
            .inner()
            .dataplane_program()
            .expect("recovered loop compiles rules"),
        "{label}: fabric must match the recovered intent after repair"
    );
    let (prev, intended) = (
        report
            .prev_ctx
            .as_ref()
            .expect("recovered loop has a context"),
        report
            .intended_ctx
            .as_ref()
            .expect("recovered loop has a context"),
    );
    repair_conformance(&rr.pre_repair_fabric, prev, intended)
        .unwrap_or_else(|e| panic!("{label}: repair conformance: {e}"));

    // Resume from the journal's intent cursor and converge on the twin.
    let resume_from = recovered.seq() as usize;
    assert!(
        resume_from <= script.len(),
        "{label}: replay overshot the script"
    );
    run_script(&mut recovered, script, resume_from);
    assert_eq!(
        encode_state(recovered.inner()),
        twin_final,
        "{label}: recovered+resumed state must be bitwise-equal to the twin \
         (digest {:#010x} vs {:#010x})",
        state_digest(recovered.inner()),
        apple_nfv::journal::crc32(twin_final),
    );
    recovered
        .inner()
        .check_ledger()
        .unwrap_or_else(|e| panic!("{label}: residual ledger: {e}"));
    let (classes, handler) = recovered.inner().snapshot();
    let violations = verify_shares(&classes, &handler, recovered.inner().orchestrator(), 1e-6);
    assert!(
        violations.is_empty(),
        "{label}: share violations: {violations:?}"
    );
    let snap = rec.snapshot();
    PairOutcome {
        site: kill.site,
        torn_bytes: report.torn_truncated_bytes,
        replayed: report.records_replayed,
        repaired: !rr.was_clean || snap.counter("recovery.reconcile_repairs").unwrap_or(0) > 0,
        unacked: report.unacked_barriers,
    }
}

/// The headline sweep: ≥200 sampled (timeline, crash-point) pairs, each
/// recovered, reconciled, conformance-checked, and resumed to bitwise
/// twin equality.
#[test]
fn crash_point_battery_recovers_bitwise_everywhere() {
    install_quiet_kill_hook();
    let s = setup();
    let mut pairs = 0u64;
    let mut torn_pairs = 0u64;
    let mut replays = 0u64;
    let mut repairs = 0u64;
    let mut sites = [0u64; 4];
    for (ti, &tl_seed) in TIMELINE_SEEDS.iter().enumerate() {
        let evs = events(tl_seed);
        let script = build_script(&s, &evs);
        let (twin_final, visits) = twin_and_sites(&s, &script);
        assert!(
            visits > PAIRS_PER_TIMELINE,
            "timeline {ti} visits only {visits} sites"
        );
        let stride = visits / PAIRS_PER_TIMELINE;
        for k in 0..PAIRS_PER_TIMELINE {
            // Even spread over the run, offset per timeline so different
            // timelines sample different phases of the step cycle.
            let ordinal = (k * stride + ti as u64 % stride.max(1)) + 1;
            let torn = pairs % 2 == 1;
            let label = format!("timeline {ti} ordinal {ordinal} torn {torn}");
            let out = run_pair(&s, &script, &twin_final, ordinal, torn, &label);
            pairs += 1;
            torn_pairs += u64::from(out.torn_bytes > 0);
            replays += out.replayed;
            repairs += u64::from(out.repaired);
            sites[match out.site {
                CrashSite::JournalAppend => 0,
                CrashSite::SnapshotWrite => 1,
                CrashSite::DataplaneBarrier => 2,
                CrashSite::SouthboundAck => 3,
            }] += 1;
        }
    }
    assert!(pairs >= 200, "battery ran only {pairs} pairs");
    assert!(
        sites.iter().all(|&c| c > 0),
        "battery must hit every site kind, got {sites:?}"
    );
    assert!(torn_pairs > 0, "battery never produced a torn tail");
    assert!(replays > 0, "battery never replayed a record");
    assert!(repairs > 0, "battery never exercised fabric repair");
}

/// A crash before the very first durability site recovers to genesis and
/// replays the entire script.
#[test]
fn crash_at_first_site_recovers_from_genesis() {
    install_quiet_kill_hook();
    let s = setup();
    let evs = events(SEED ^ 7);
    let script = build_script(&s, &evs);
    let (twin_final, _) = twin_and_sites(&s, &script);
    run_pair(&s, &script, &twin_final, 1, false, "first-site");
}

/// Journal-only mode (snapshots disabled) still recovers bitwise — every
/// intent replays from genesis.
#[test]
fn journal_only_mode_recovers_bitwise() {
    install_quiet_kill_hook();
    let s = RecoverySetup {
        recovery: RecoveryConfig { snapshot_every: 0 },
        ..setup()
    };
    let evs = events(SEED ^ 11);
    let script = build_script(&s, &evs);
    let (twin_final, visits) = twin_and_sites(&s, &script);
    let out = run_pair(&s, &script, &twin_final, visits / 2, true, "journal-only");
    assert!(
        out.replayed > 0,
        "journal-only recovery must replay intents"
    );
}

// ---------------------------------------------------------------------------
// Pinned wire-format fixtures.
//
// The committed files freeze the journal and snapshot byte formats at
// RECORD_VERSION / SNAPSHOT_VERSION 1. If either codec changes shape,
// these tests fail — bump the version constants and regenerate with
// `BLESS_RECOVERY_FIXTURES=1 cargo test -p apple-nfv --test recovery`.
// ---------------------------------------------------------------------------

/// Seed and shape of the fixture run (small on purpose: the files are
/// committed).
const FIXTURE_SEED: u64 = 0xf1c5;
const FIXTURE_EVENTS: usize = 20;
const FIXTURE_SNAPSHOT_EVERY: u64 = 8;

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("recovery")
}

/// Reruns the pinned fixture scenario and returns the raw store bytes
/// (journal, last snapshot seq, snapshot payload).
fn fixture_bytes() -> (Vec<u8>, u64, Vec<u8>) {
    let s = RecoverySetup {
        recovery: RecoveryConfig {
            snapshot_every: FIXTURE_SNAPSHOT_EVERY,
        },
        ..setup()
    };
    let evs = events(FIXTURE_SEED);
    assert!(evs.len() >= FIXTURE_EVENTS, "fixture timeline too short");
    let store = SharedMemStore::new();
    let mut jl = JournaledLoop::new(&s, store.clone(), SharedFabric::new(), CrashPoint::never());
    for e in &evs[..FIXTURE_EVENTS] {
        jl.step(e, &NOOP).expect("fixture run");
    }
    let snap_seq = (FIXTURE_EVENTS as u64 / FIXTURE_SNAPSHOT_EVERY) * FIXTURE_SNAPSHOT_EVERY;
    let inner = store.inner();
    let snapshot = inner
        .snapshot_bytes(snap_seq)
        .expect("fixture run writes a snapshot")
        .to_vec();
    (inner.journal_bytes().to_vec(), snap_seq, snapshot)
}

#[test]
fn fixture_files_match_the_pinned_run() {
    let dir = fixture_dir();
    let (journal, snap_seq, snapshot) = fixture_bytes();
    if std::env::var("BLESS_RECOVERY_FIXTURES").is_ok() {
        std::fs::create_dir_all(&dir).expect("create fixture dir");
        std::fs::write(dir.join("journal.bin"), &journal).expect("write journal fixture");
        std::fs::write(dir.join(format!("snapshot_{snap_seq}.bin")), &snapshot)
            .expect("write snapshot fixture");
        return;
    }
    let want_journal = std::fs::read(dir.join("journal.bin")).expect("committed journal fixture");
    let want_snapshot =
        std::fs::read(dir.join(format!("snapshot_{snap_seq}.bin"))).expect("committed snapshot");
    assert_eq!(
        journal, want_journal,
        "journal wire format drifted from the committed fixture — if \
         intentional, bump RECORD_VERSION and re-bless"
    );
    assert_eq!(
        snapshot, want_snapshot,
        "snapshot wire format drifted from the committed fixture — if \
         intentional, bump SNAPSHOT_VERSION and re-bless"
    );
}

/// The committed fixture bytes must stay *recoverable*: load them into a
/// fresh store, recover, and land on the pinned state digest.
#[test]
fn committed_fixture_recovers_to_pinned_digest() {
    let dir = fixture_dir();
    let journal = std::fs::read(dir.join("journal.bin")).expect("committed journal fixture");
    let snap_seq = (FIXTURE_EVENTS as u64 / FIXTURE_SNAPSHOT_EVERY) * FIXTURE_SNAPSHOT_EVERY;
    let snapshot =
        std::fs::read(dir.join(format!("snapshot_{snap_seq}.bin"))).expect("committed snapshot");

    // Every committed journal record must decode under the current codec.
    let mut probe = MemStore::new();
    probe.set_journal_bytes(journal.clone());
    let scanned = Journal::recover(&mut probe).expect("committed journal scans");
    assert_eq!(
        scanned.truncated_bytes, 0,
        "committed fixture has no torn tail"
    );
    for payload in &scanned.records {
        Record::decode(payload).expect("committed record decodes");
    }

    let s = RecoverySetup {
        recovery: RecoveryConfig {
            snapshot_every: FIXTURE_SNAPSHOT_EVERY,
        },
        ..setup()
    };
    let mut store = MemStore::new();
    store.set_journal_bytes(journal);
    store.set_snapshot_bytes(snap_seq, snapshot);
    let (recovered, report) = recover(&s, store, SharedFabric::new(), &NOOP).expect("recover");
    assert_eq!(report.snapshot_seq, Some(snap_seq));
    // Cross-check against an in-process rerun of the same scenario: the
    // digest is pinned to the *run*, not to a magic constant, so the test
    // catches any divergence between the committed bytes and what the
    // current code would produce and replay.
    let srun = fixture_bytes();
    let mut store2 = MemStore::new();
    store2.set_journal_bytes(srun.0);
    store2.set_snapshot_bytes(srun.1, srun.2);
    let (rerun, _) = recover(&s, store2, SharedFabric::new(), &NOOP).expect("recover rerun");
    assert_eq!(
        state_digest(recovered.inner()),
        state_digest(rerun.inner()),
        "committed fixture and pinned rerun must recover to the same state"
    );
    assert!(
        recovered.inner().live_count() > 0,
        "fixture state is non-trivial"
    );
}

// ---------------------------------------------------------------------------
// Southbound-ack crash sites (DESIGN.md §13).
//
// `FabricObserver` journals a `Barrier` record *before* mutating the
// fabric and a `BarrierAck` record *after*: killing at the
// `SouthboundAck` site freezes the exact "applied but unacked" window the
// async southbound channel exposes — the fabric is one barrier ahead of
// the acked journal suffix. These tests target that window directly and
// pin its journal wire image under `tests/fixtures/southbound/`.
// ---------------------------------------------------------------------------

/// Kill at `ordinal` over a fresh store + fabric and report which site
/// fired, handing back the surviving store and fabric.
fn kill_at(
    s: &RecoverySetup,
    script: &[Action],
    ordinal: u64,
) -> (CrashSite, SharedMemStore, SharedFabric) {
    let store = SharedMemStore::new();
    let fabric = SharedFabric::new();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        let mut jl = JournaledLoop::new(s, store.clone(), fabric.clone(), CrashPoint::at(ordinal));
        run_script(&mut jl, script, 0);
    }))
    .expect_err("probe ordinal must be inside the visited range");
    let kill = kill_of(caught.as_ref()).expect("probe panic was not a kill");
    assert_eq!(kill.ordinal, ordinal, "probe fired at the wrong ordinal");
    (kill.site, store, fabric)
}

/// First ordinal in `from..=visits` whose site is `SouthboundAck`.
/// Deterministic: the site schedule is a pure function of the script.
fn find_southbound_ordinal(s: &RecoverySetup, script: &[Action], from: u64, visits: u64) -> u64 {
    (from.max(1)..=visits)
        .find(|&o| kill_at(s, script, o).0 == CrashSite::SouthboundAck)
        .expect("run never visits a southbound-ack site")
}

/// A kill in the applied-but-unacked window recovers, repairs the
/// partially-acked fabric tail, and resumes to bitwise twin equality —
/// with the unacked barrier visible in the recovery report.
#[test]
fn southbound_ack_crash_repairs_partially_acked_tail() {
    install_quiet_kill_hook();
    let s = setup();
    let evs = events(SEED ^ 13);
    let script = build_script(&s, &evs);
    let (twin_final, visits) = twin_and_sites(&s, &script);
    let ordinal = find_southbound_ordinal(&s, &script, visits / 2, visits);
    let out = run_pair(&s, &script, &twin_final, ordinal, false, "southbound-ack");
    assert_eq!(
        out.site,
        CrashSite::SouthboundAck,
        "probe and pair disagree"
    );
    assert!(
        out.unacked >= 1,
        "a southbound-ack kill must leave at least one unacked barrier, \
         got {}",
        out.unacked
    );
}

/// Seed and shape of the pinned southbound fixture (journal-only mode so
/// the committed artifact is a single journal file).
const SB_FIXTURE_SEED: u64 = 0x5bf1;
const SB_FIXTURE_EVENTS: usize = 18;

fn southbound_fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("southbound")
}

/// Reruns the pinned southbound crash scenario: kill the controller at
/// the first southbound-ack site past the midpoint and hand back the
/// surviving journal bytes, the surviving (partially-acked) fabric, the
/// setup, and the frozen script.
fn southbound_fixture_run() -> (Vec<u8>, SharedFabric, RecoverySetup, Vec<Action>) {
    let s = RecoverySetup {
        recovery: RecoveryConfig { snapshot_every: 0 },
        ..setup()
    };
    let evs = events(SB_FIXTURE_SEED);
    assert!(evs.len() >= SB_FIXTURE_EVENTS, "fixture timeline too short");
    let script = build_script(&s, &evs[..SB_FIXTURE_EVENTS]);
    let (_, visits) = twin_and_sites(&s, &script);
    let ordinal = find_southbound_ordinal(&s, &script, visits / 2, visits);
    let (site, store, fabric) = kill_at(&s, &script, ordinal);
    assert_eq!(site, CrashSite::SouthboundAck, "fixture kill site drifted");
    (store.inner().journal_bytes().to_vec(), fabric, s, script)
}

/// The committed journal freezes a submitted-but-unacked barrier tail:
/// its bytes match the pinned rerun, every record decodes, the `Barrier`
/// / `BarrierAck` counts disagree, and recovering + reconciling from the
/// committed bytes repairs the surviving fabric and resumes to bitwise
/// twin equality. Regenerate with
/// `BLESS_RECOVERY_FIXTURES=1 cargo test -p apple-nfv --test recovery`.
#[test]
fn southbound_fixture_freezes_partially_acked_tail() {
    install_quiet_kill_hook();
    let dir = southbound_fixture_dir();
    let (journal, fabric, s, script) = southbound_fixture_run();
    if std::env::var("BLESS_RECOVERY_FIXTURES").is_ok() {
        std::fs::create_dir_all(&dir).expect("create southbound fixture dir");
        std::fs::write(dir.join("journal.bin"), &journal).expect("write southbound fixture");
        return;
    }
    let want = std::fs::read(dir.join("journal.bin")).expect("committed southbound fixture");
    assert_eq!(
        journal, want,
        "southbound journal fixture drifted from the pinned run — if \
         intentional, re-bless with BLESS_RECOVERY_FIXTURES=1"
    );

    // The committed bytes decode under the current codec and visibly
    // carry a submitted-but-unacked barrier.
    let mut probe = MemStore::new();
    probe.set_journal_bytes(want.clone());
    let scanned = Journal::recover(&mut probe).expect("committed southbound journal scans");
    assert_eq!(scanned.truncated_bytes, 0, "fixture has no torn tail");
    let (mut submitted, mut acked) = (0u64, 0u64);
    for payload in &scanned.records {
        match Record::decode(payload).expect("committed record decodes") {
            Record::Barrier { .. } => submitted += 1,
            Record::BarrierAck { .. } => acked += 1,
            _ => {}
        }
    }
    assert!(
        submitted > acked,
        "fixture must freeze an unacked barrier (submitted {submitted}, acked {acked})"
    );

    // Recover from the committed bytes against the surviving fabric,
    // repair the partially-acked tail, and resume to the twin.
    let mut store = MemStore::new();
    store.set_journal_bytes(want);
    let rec = MemoryRecorder::new();
    let (mut recovered, report) =
        recover(&s, store, fabric.clone(), &rec).expect("recover southbound fixture");
    assert!(
        report.unacked_barriers >= 1,
        "recovery must surface the unacked barrier, got {}",
        report.unacked_barriers
    );
    reconcile(&recovered, &rec);
    assert_eq!(
        &fabric.program(),
        recovered
            .inner()
            .dataplane_program()
            .expect("recovered loop compiles rules"),
        "reconcile must repair the partially-acked fabric tail"
    );
    let (twin_final, _) = twin_and_sites(&s, &script);
    let resume_from = recovered.seq() as usize;
    run_script(&mut recovered, &script, resume_from);
    assert_eq!(
        encode_state(recovered.inner()),
        twin_final,
        "southbound fixture recovery must converge bitwise on the twin"
    );
}
