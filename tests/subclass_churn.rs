//! Property battery for sub-class consistent hashing (`HashRing`): a
//! re-split after an instance joins or leaves must move *exactly* the
//! flow-space fraction that instance owns — no collateral churn anywhere
//! else on the ring. This is the §V-A sub-class re-mapping bound the
//! online loop relies on when it grows or shrinks a class's instance set.
//!
//! Proptest-style: seeded random cases per tests/README.md (proptest is
//! not a dependency), with previously-surprising cases pinned in
//! [`REGRESSION_CASES`] as explicit inputs rather than a regression file.

use apple_nfv::core::subclass::HashRing;
use apple_nfv::nf::InstanceId;
use apple_nfv::rng::rngs::StdRng;
use apple_nfv::rng::{Rng, RngCore, SeedableRng};

/// Base seed for this file (see tests/README.md).
const SEED: u64 = 0x5ca1_e50b;

/// Random ring configurations in the main sweep.
const CASES: u64 = 40;

/// Pinned inputs: cases that once probed boundary behaviour (single
/// instance, two instances, dense 23-instance ring) — kept explicit so a
/// future ring change re-runs them verbatim.
const REGRESSION_CASES: &[(u64, usize, u32)] = &[
    (0x01, 1, 1),  // one instance, one point: removal -> full churn
    (0x02, 2, 1),  // two instances, minimal points
    (0x2a, 23, 7), // dense ring, odd replica count
    (0x11, 4, 64), // high replica count, small set
];

fn random_instances(rng: &mut StdRng, n: usize) -> Vec<InstanceId> {
    let mut ids: Vec<InstanceId> = Vec::with_capacity(n);
    while ids.len() < n {
        let id = InstanceId(rng.next_u64() & 0xffff_ffff);
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    ids
}

/// Churn from adding `joined` must equal the share `joined` owns on the
/// grown ring; churn from removing `left` must equal the share it owned
/// before. Tolerance covers only f64 segment-summation noise.
fn assert_minimal_churn(label: &str, instances: &[InstanceId], replicas: u32, rng: &mut StdRng) {
    let ring = HashRing::new(instances, replicas);

    // Join: one fresh instance.
    let joined = loop {
        let id = InstanceId(0x1_0000_0000 | rng.next_u64() & 0xffff_ffff);
        if !instances.contains(&id) {
            break id;
        }
    };
    let mut grown_set = instances.to_vec();
    grown_set.push(joined);
    let grown = HashRing::new(&grown_set, replicas);
    let churn = ring.churn_vs(&grown);
    let share = grown.share(joined);
    assert!(
        (churn - share).abs() < 1e-9,
        "{label}: join moved {churn:.12}, theoretical share is {share:.12}"
    );

    // Leave: one existing instance.
    let left = instances[rng.gen_range(0..instances.len())];
    let shrunk_set: Vec<InstanceId> = instances.iter().copied().filter(|&i| i != left).collect();
    let shrunk = HashRing::new(&shrunk_set, replicas);
    let churn = ring.churn_vs(&shrunk);
    let share = ring.share(left);
    assert!(
        (churn - share).abs() < 1e-9,
        "{label}: leave moved {churn:.12}, theoretical share is {share:.12}"
    );
}

/// The headline property over random rings.
#[test]
fn rescale_moves_exactly_the_changed_instances_share() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(SEED ^ case);
        let n = rng.gen_range(1usize..20);
        let replicas = rng.gen_range(1u32..16);
        let instances = random_instances(&mut rng, n);
        assert_minimal_churn(&format!("case {case}"), &instances, replicas, &mut rng);
    }
}

/// The pinned regression inputs, run through the same property.
#[test]
fn pinned_regression_cases_hold() {
    for &(tag, n, replicas) in REGRESSION_CASES {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x100 + tag));
        let instances = random_instances(&mut rng, n);
        assert_minimal_churn(
            &format!("regression {tag:#x}"),
            &instances,
            replicas,
            &mut rng,
        );
    }
}

/// Segments always tile `[0,1)` exactly, shares sum to 1, and the owner
/// lookup agrees with the segment decomposition at every boundary
/// midpoint.
#[test]
fn segments_tile_the_flow_space_and_agree_with_owner() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x200 + case));
        let n = rng.gen_range(1usize..12);
        let replicas = rng.gen_range(1u32..9);
        let instances = random_instances(&mut rng, n);
        let ring = HashRing::new(&instances, replicas);
        let segs = ring.segments();
        assert!(!segs.is_empty());
        let mut cursor = 0.0;
        let mut total = 0.0;
        for &(lo, hi, inst) in &segs {
            assert!(
                (lo - cursor).abs() < 1e-12,
                "case {case}: gap at {cursor} -> {lo}"
            );
            assert!(hi > lo, "case {case}: empty segment at {lo}");
            total += hi - lo;
            cursor = hi;
            let mid = lo + (hi - lo) / 2.0;
            assert_eq!(
                ring.owner(mid),
                Some(inst),
                "case {case}: owner/segment disagreement at {mid}"
            );
        }
        assert!(
            (cursor - 1.0).abs() < 1e-12,
            "case {case}: does not reach 1"
        );
        assert!(
            (total - 1.0).abs() < 1e-12,
            "case {case}: shares sum {total}"
        );
        let share_sum: f64 = instances.iter().map(|&i| ring.share(i)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "case {case}: {share_sum}");
    }
}

/// An unchanged instance set re-splits with zero churn, and a ring is a
/// pure function of its inputs (byte-identical segments across builds).
#[test]
fn identical_inputs_give_identical_rings() {
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(SEED ^ (0x300 + case));
        let n = rng.gen_range(1usize..10);
        let replicas = rng.gen_range(1u32..8);
        let instances = random_instances(&mut rng, n);
        let a = HashRing::new(&instances, replicas);
        let b = HashRing::new(&instances, replicas);
        assert_eq!(a.segments(), b.segments(), "case {case}");
        assert_eq!(a.churn_vs(&b), 0.0, "case {case}: rebuild churned");
    }
}
