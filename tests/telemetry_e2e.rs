//! End-to-end acceptance test for the telemetry substrate: plan a full
//! APPLE deployment on Internet2 (place → tag → program), force an
//! overload, run failover, and check that the JSON telemetry snapshot
//! carries per-phase engine timings, simplex pivot counts and failover
//! event counts — the numbers Table V / Fig. 9 are built from.

use apple_nfv::core::classes::{ClassConfig, ClassId};
use apple_nfv::core::controller::{Apple, AppleConfig};
use apple_nfv::telemetry::{MemoryRecorder, Snapshot};
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;
use std::collections::BTreeMap;

/// Base seed for this file (see `tests/README.md`).
const SEED: u64 = 0x0e2e_7e1e;

#[test]
fn full_pipeline_emits_a_complete_json_snapshot() {
    let rec = MemoryRecorder::new();

    // --- Place + tag: plan the deployment under the recorder. ---
    let topo = zoo::internet2();
    let tm = GravityModel::new(3_000.0, SEED).base_matrix(&topo);
    let cfg = AppleConfig {
        classes: ClassConfig {
            max_classes: 12,
            ..Default::default()
        },
        ..Default::default()
    };
    let apple = Apple::plan_recorded(&topo, &tm, &cfg, &rec).unwrap();
    assert!(apple.placement().total_instances() > 0);

    // --- Overload + failover: burst every class far past capacity of a
    // victim instance and notify the Dynamic Handler. ---
    let mut handler = apple.dynamic_handler().unwrap();
    let (classes, _placement, _plan, _program, mut orch) = apple.into_parts();
    let victim = handler.shares()[0].instances[0];
    let burst: BTreeMap<ClassId, f64> =
        classes.iter().map(|c| (c.id, c.rate_mbps * 40.0)).collect();
    let act = handler
        .handle_overload_recorded(victim, &burst, &classes, &mut orch, &rec)
        .unwrap();
    assert_ne!(
        act,
        apple_nfv::core::failover::FailoverAction::None,
        "a burst through a live instance must trigger failover"
    );
    handler.roll_back_recorded(&mut orch, &rec);

    // --- The snapshot: non-empty, JSON round-trippable, and carrying the
    // headline metrics of every subsystem. ---
    let snap = rec.snapshot();
    assert!(!snap.is_empty());

    // Per-phase engine timings.
    for phase in ["place", "build", "solve", "round"] {
        let name = format!("span.engine.{phase}");
        let h = snap
            .histogram(&name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert!(h.count >= 1, "{name} never sampled");
        assert!(h.sum >= 0.0);
    }

    // Simplex pivot counts.
    assert!(
        snap.counter("lp.pivots").unwrap_or(0) > 0,
        "no pivots counted"
    );
    assert!(snap.counter("lp.solves").unwrap_or(0) >= 1);

    // Failover event counts: exactly one notification was handled, so
    // exactly one outcome counter fired; the roll-back was counted too.
    let outcomes: u64 = [
        "failover.rebalanced",
        "failover.reassigned",
        "failover.helpers_spawned",
        "failover.held",
        "failover.noop",
    ]
    .iter()
    .filter_map(|n| snap.counter(n))
    .sum();
    assert_eq!(outcomes, 1, "one notification must yield one outcome");
    assert_eq!(snap.counter("failover.rollbacks"), Some(1));
    assert_eq!(snap.counter("span.failover.handle_overload.calls"), Some(1));

    // TCAM accounting from rule generation.
    assert!(snap.gauge("tcam.rules_installed").unwrap_or(0.0) > 0.0);
    assert!(snap.gauge("tcam.reduction_ratio").unwrap_or(0.0) >= 1.0);

    // JSON export is non-empty and parses back to the identical snapshot.
    let json = snap.to_json();
    assert!(json.contains("lp.pivots") && json.contains("span.engine.place"));
    let back = Snapshot::from_json(&json).expect("snapshot JSON parses");
    assert_eq!(back, snap);
}
