//! Regression tests for the telemetry substrate's *semantic* guarantees:
//! the numbers the recorder reports must agree with what the instrumented
//! code actually did. All runs use small fixed inputs (see
//! `tests/README.md` for the seeding convention).

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::engine::{EngineConfig, OptimizationEngine};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::sim::failover_lab::{detection_timeline_recorded, DetectorConfig};
use apple_nfv::telemetry::{MemoryRecorder, Recorder};
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;

/// Base seed for this file (see `tests/README.md`); single-case tests use
/// it directly.
const SEED: u64 = 0x07e1_e3e7;

/// A small fixed placement problem: Internet2, 10 classes.
fn small_problem() -> (ClassSet, ResourceOrchestrator) {
    let topo = zoo::internet2();
    let tm = GravityModel::new(2_500.0, SEED).base_matrix(&topo);
    let classes = ClassSet::build(
        &topo,
        &tm,
        &ClassConfig {
            max_classes: 10,
            ..Default::default()
        },
    );
    let orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
    (classes, orch)
}

#[test]
fn rounding_gap_gauge_is_nonnegative_and_matches_placement() {
    let (classes, orch) = small_problem();
    let rec = MemoryRecorder::new();
    let engine = OptimizationEngine::new(EngineConfig::default());
    let placement = engine.place_recorded(&classes, &orch, &rec).unwrap();
    let snap = rec.snapshot();

    let gap = snap.gauge("engine.rounding_gap").expect("gap gauged");
    // Ceiling a fractional LP optimum can only add instances.
    assert!(gap >= -1e-9, "rounding gap {gap} must be >= 0");
    assert!(
        (gap - placement.rounding_gap()).abs() < 1e-9,
        "gauge {gap} disagrees with Placement::rounding_gap() {}",
        placement.rounding_gap()
    );
    assert_eq!(
        snap.gauge("engine.total_instances"),
        Some(f64::from(placement.total_instances()))
    );
}

#[test]
fn solve_phase_spans_sum_to_at_most_total_place_time() {
    let (classes, orch) = small_problem();
    let rec = MemoryRecorder::new();
    let engine = OptimizationEngine::new(EngineConfig::default());
    engine.place_recorded(&classes, &orch, &rec).unwrap();
    let snap = rec.snapshot();

    let total = snap
        .histogram("span.engine.place")
        .expect("total span recorded")
        .sum;
    let phases: f64 = ["build", "solve", "round", "consolidate"]
        .iter()
        .filter_map(|p| snap.histogram(&format!("span.engine.{p}")))
        .map(|h| h.sum)
        .sum();
    assert!(phases > 0.0, "no phase spans recorded");
    // The phases partition the interior of place(); allow a sliver of
    // timer slack for the non-span glue between them.
    assert!(
        phases <= total * 1.01 + 0.5,
        "phase spans sum to {phases} ms > total {total} ms"
    );
}

#[test]
fn pivot_counters_match_reported_solver_work() {
    let (classes, orch) = small_problem();
    let rec = MemoryRecorder::new();
    let engine = OptimizationEngine::new(EngineConfig::default());
    engine.place_recorded(&classes, &orch, &rec).unwrap();
    let snap = rec.snapshot();

    let pivots = snap.counter("lp.pivots").expect("pivots counted");
    let phase1 = snap.counter("lp.phase1_pivots").unwrap_or(0);
    let solves = snap.counter("lp.solves").expect("solves counted");
    assert!(pivots > 0, "a real LP needs pivots");
    assert!(
        phase1 <= pivots,
        "phase-1 pivots are a subset of all pivots"
    );
    assert!(solves >= 1);
    // Every solve contributed one sample to each per-phase histogram.
    assert_eq!(snap.histogram("lp.phase1_ms").unwrap().count, solves);
    assert_eq!(snap.histogram("lp.phase2_ms").unwrap().count, solves);
}

#[test]
fn forced_overload_records_detection_and_helper_events() {
    // The §VIII-E burst (1 -> 10 -> 1 Kpps) must trip the detector at
    // least once and boot at least one helper; the roll-back at burst end
    // must also be counted.
    let rec = MemoryRecorder::new();
    let cfg = DetectorConfig::paper();
    let tl = detection_timeline_recorded(&cfg, &rec);
    let snap = rec.snapshot();

    assert!(snap.counter("sim.overloads_detected").unwrap_or(0) >= 1);
    assert!(snap.counter("sim.helpers_booted").unwrap_or(0) >= 1);
    assert!(snap.counter("sim.rollbacks").unwrap_or(0) >= 1);
    // Detection latency: within two polls of the burst start.
    let lat = snap
        .histogram("sim.detection_latency_ms")
        .expect("latency observed");
    assert!(
        lat.max <= 2.0 * cfg.poll_ms as f64,
        "detection latency {} ms exceeds two polls",
        lat.max
    );
    // The recorded events must agree with the timeline itself.
    assert!(tl.iter().any(|p| p.overloaded));
    assert!(tl.iter().any(|p| p.helper_active));
}

#[test]
fn disabled_recorder_changes_no_results() {
    // The NOOP-instrumented path and the recorded path must compute the
    // same placement — telemetry is observation, not behaviour.
    let (classes, orch) = small_problem();
    let engine = OptimizationEngine::new(EngineConfig::default());
    let plain = engine.place(&classes, &orch).unwrap();
    let rec = MemoryRecorder::new();
    let recorded = engine.place_recorded(&classes, &orch, &rec).unwrap();
    assert_eq!(plain.total_instances(), recorded.total_instances());
    assert!((plain.lp_objective() - recorded.lp_objective()).abs() < 1e-9);
    assert!(rec.enabled());
}
