//! Regression battery for `apply_transition_with` under control-plane
//! faults: a transition that fails mid-flight must surface the partial
//! state it had built — instances booted before a failed rule install,
//! switches already re-ruled — as a typed rollback plan
//! ([`RollbackReport`] inside [`TransitionError`]), and the orchestrator
//! must be back at exactly the old population when the error returns.
//!
//! This is the fix for the naive `apply_transition`'s partial-failure
//! window: fresh instances used to be torn down silently with no record
//! of what had happened, and a rule-install failure after a successful
//! boot phase left no way to tell how far the switch-over had progressed.

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::engine::{EngineConfig, OptimizationEngine, Placement};
use apple_nfv::core::orchestrator::{ControlOps, ResourceOrchestrator};
use apple_nfv::core::transition::{
    apply_transition_with, plan_transition_from_live, TransitionError, TransitionPlan,
};
use apple_nfv::faults::{FailFirstN, FaultInjector};
use apple_nfv::nf::NfType;
use apple_nfv::telemetry::{MemoryRecorder, NOOP};
use apple_nfv::topology::zoo;
use apple_nfv::traffic::GravityModel;
use std::collections::BTreeMap;

/// Base seed for this file (see tests/README.md).
const SEED: u64 = 0x7a11_bac4;

/// Fails every boot attempt after the first `skip` have succeeded — lands
/// the failure mid-way through the launch phase so the rollback has fresh
/// instances to revert.
struct FailBootsAfter {
    skip: u32,
    seen: u32,
}

impl FaultInjector for FailBootsAfter {
    fn boot_fails(&mut self, _switch: usize, _attempt: u32) -> bool {
        self.seen += 1;
        self.seen > self.skip
    }
}

/// Fails every rule-install attempt at one specific switch — lands the
/// failure after earlier switches have already been re-ruled, so the
/// rollback must also revert installed programs.
struct FailRulesAt {
    switch: usize,
}

impl FaultInjector for FailRulesAt {
    fn rule_install_fails(&mut self, switch: usize, _attempt: u32) -> bool {
        switch == self.switch
    }
}

fn placement_for(load: f64, seed: u64, orch: &ResourceOrchestrator) -> (ClassSet, Placement) {
    let topo = zoo::internet2();
    let tm = GravityModel::new(load, seed).base_matrix(&topo);
    let classes = ClassSet::build(
        &topo,
        &tm,
        &ClassConfig {
            max_classes: 16,
            ..Default::default()
        },
    );
    let placement = OptimizationEngine::new(EngineConfig::default())
        .place(&classes, orch)
        .expect("internet2 placement");
    (classes, placement)
}

fn population(orch: &ResourceOrchestrator) -> BTreeMap<(usize, NfType), u32> {
    let mut pop = BTreeMap::new();
    for inst in orch.instances() {
        *pop.entry((inst.host_switch(), inst.nf())).or_insert(0) += 1;
    }
    pop
}

fn touched_switches(plan: &TransitionPlan) -> Vec<usize> {
    let mut switches: Vec<usize> = plan
        .launches
        .iter()
        .chain(plan.teardowns.iter())
        .map(|&(v, _, _)| v.0)
        .collect();
    switches.sort_unstable();
    switches.dedup();
    switches
}

/// Builds a live deployment at the small placement, plus the plan that
/// would migrate it to the large one. The plan must both launch and tear
/// down, or the fault scenarios below test nothing.
fn live_deployment() -> (ResourceOrchestrator, TransitionPlan, Placement) {
    let topo = zoo::internet2();
    let mut orch = ResourceOrchestrator::with_uniform_hosts(&topo, 64);
    let (_, small) = placement_for(2_000.0, SEED, &orch);
    let mut ops = ControlOps::reliable(SEED);
    let bootstrap = plan_transition_from_live(&orch, &small, &mut ops.timing);
    apply_transition_with(&bootstrap, &mut orch, &mut ops, &NOOP).expect("bootstrap transition");
    let (_, large) = placement_for(
        6_000.0,
        SEED ^ 1,
        &ResourceOrchestrator::with_uniform_hosts(&topo, 64),
    );
    let plan = plan_transition_from_live(&orch, &large, &mut ops.timing);
    assert!(
        !plan.launches.is_empty(),
        "migration plan launches nothing; pick different loads"
    );
    (orch, plan, large)
}

/// Boot failure mid-launch: the instances booted so far are the typed
/// rollback's `torn_down`, and the orchestrator is back at the old
/// population.
#[test]
fn boot_failure_reports_and_reverts_fresh_instances() {
    let (mut orch, plan, _) = live_deployment();
    let before = population(&orch);
    let total_launches: u32 = plan.launches.iter().map(|&(_, _, c)| c).sum();
    assert!(
        total_launches >= 2,
        "need at least 2 launches to fail midway"
    );

    let rec = MemoryRecorder::new();
    let mut ops =
        ControlOps::with_injector(SEED ^ 0x10, Box::new(FailBootsAfter { skip: 2, seen: 0 }));
    let err = apply_transition_with(&plan, &mut orch, &mut ops, &rec)
        .expect_err("boots fail after the first two");
    match &err {
        TransitionError::Boot { rollback, .. } => {
            assert_eq!(
                rollback.torn_down.len(),
                2,
                "exactly the two booted instances are reverted"
            );
            assert!(rollback.rules_reverted.is_empty(), "no rules were touched");
        }
        other => panic!("expected Boot error, got {other:?}"),
    }
    assert_eq!(err.rollback().torn_down.len(), 2);
    assert_eq!(population(&orch), before, "old placement must survive");
    assert_eq!(rec.snapshot().counter("transition.rollbacks"), Some(1));
    // The error formats with its rollback detail for operators.
    assert!(err.to_string().contains("rolled back 2 fresh instances"));
}

/// Rule-install failure after a fully successful boot phase — the classic
/// partial-failure window. Every fresh instance must come back down and
/// be listed in the rollback.
#[test]
fn rule_failure_after_boots_reverts_everything() {
    let (mut orch, plan, _) = live_deployment();
    let before = population(&orch);
    let total_launches: u32 = plan.launches.iter().map(|&(_, _, c)| c).sum();

    let mut ops = ControlOps::with_injector(SEED ^ 0x20, Box::new(FailFirstN::new(0, 10_000)));
    let err = apply_transition_with(&plan, &mut orch, &mut ops, &NOOP)
        .expect_err("every rule install fails");
    match &err {
        TransitionError::RuleInstall { rollback, .. } => {
            assert_eq!(
                rollback.torn_down.len(),
                total_launches as usize,
                "all fresh instances must be reverted"
            );
            assert!(
                rollback.rules_reverted.is_empty(),
                "the very first install failed; nothing to revert"
            );
        }
        other => panic!("expected RuleInstall error, got {other:?}"),
    }
    assert_eq!(population(&orch), before, "old placement must survive");
}

/// Rule-install failure at a *later* switch: the earlier switches were
/// already re-ruled and must show up in `rules_reverted`.
#[test]
fn partial_rule_installs_are_reported_reverted() {
    let (mut orch, plan, _) = live_deployment();
    let before = population(&orch);
    let touched = touched_switches(&plan);
    assert!(touched.len() >= 2, "need >= 2 touched switches");
    let fail_at = touched[1];

    let mut ops = ControlOps::with_injector(SEED ^ 0x30, Box::new(FailRulesAt { switch: fail_at }));
    let err = apply_transition_with(&plan, &mut orch, &mut ops, &NOOP)
        .expect_err("second touched switch rejects its rules");
    match &err {
        TransitionError::RuleInstall {
            switch, rollback, ..
        } => {
            assert_eq!(switch.0, fail_at);
            assert_eq!(
                rollback
                    .rules_reverted
                    .iter()
                    .map(|v| v.0)
                    .collect::<Vec<_>>(),
                vec![touched[0]],
                "the already-installed switch must be reverted"
            );
            assert!(!rollback.torn_down.is_empty());
        }
        other => panic!("expected RuleInstall error, got {other:?}"),
    }
    assert_eq!(population(&orch), before, "old placement must survive");
}

/// Transient faults the retry budget absorbs must not fail the transition:
/// the report lists every launch, every touched switch's install, and the
/// orchestrator lands exactly on the new placement.
#[test]
fn retryable_faults_still_complete_the_transition() {
    let (mut orch, plan, target) = live_deployment();
    let touched = touched_switches(&plan);
    let total_launches: u32 = plan.launches.iter().map(|&(_, _, c)| c).sum();

    let mut ops = ControlOps::with_injector(SEED ^ 0x40, Box::new(FailFirstN::new(2, 2)));
    let report = apply_transition_with(&plan, &mut orch, &mut ops, &NOOP)
        .expect("two flaky boots and two flaky installs are retryable");
    assert_eq!(report.launched.len(), total_launches as usize);
    assert_eq!(report.rules_installed.len(), touched.len());
    assert!(report.boot_ms > 0);

    let mut want: BTreeMap<(usize, NfType), u32> = BTreeMap::new();
    for (v, nf, c) in target.q_entries() {
        want.insert((v.0, nf), c);
    }
    assert_eq!(
        population(&orch),
        want,
        "successful transition must land exactly on the new placement"
    );
}
