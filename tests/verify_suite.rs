//! Formulation-validity sweep: `verify_placement` (the Eq. (2)–(8) oracle)
//! must accept the engine's output across every topology, workload style
//! and solver path this repository ships.

use apple_nfv::core::classes::{ClassConfig, ClassSet};
use apple_nfv::core::engine::{EngineConfig, OptimizationEngine};
use apple_nfv::core::orchestrator::ResourceOrchestrator;
use apple_nfv::core::policy_spec::PolicySpec;
use apple_nfv::core::verify::verify_placement;
use apple_nfv::topology::{zoo, TopologyKind};
use apple_nfv::traffic::GravityModel;

fn assert_valid(classes: &ClassSet, topo: &apple_nfv::topology::Topology, cfg: EngineConfig) {
    let orch = ResourceOrchestrator::with_uniform_hosts(topo, 64);
    let placement = OptimizationEngine::new(cfg)
        .place(classes, &orch)
        .unwrap_or_else(|e| panic!("{}: {e}", topo.kind));
    let violations = verify_placement(classes, &placement, &orch, 1e-6);
    assert!(
        violations.is_empty(),
        "{}: {} violations, first: {}",
        topo.kind,
        violations.len(),
        violations[0]
    );
}

#[test]
fn all_topologies_solve_validly() {
    for kind in TopologyKind::all() {
        let topo = kind.build();
        let tm = GravityModel::new(1_500.0, 7).base_matrix(&topo);
        let classes = ClassSet::build(
            &topo,
            &tm,
            &ClassConfig {
                max_classes: 15,
                ..Default::default()
            },
        );
        assert_valid(&classes, &topo, EngineConfig::default());
    }
}

#[test]
fn policy_driven_classes_solve_validly() {
    let topo = zoo::internet2();
    let tm = GravityModel::new(1_200.0, 8).base_matrix(&topo);
    let classes = ClassSet::build_with_policies(
        &topo,
        &tm,
        &PolicySpec::example(),
        &ClassConfig {
            max_classes: 30,
            ..Default::default()
        },
    );
    assert_valid(&classes, &topo, EngineConfig::default());
}

#[test]
fn exact_solutions_valid_on_synthetic_fabrics() {
    for topo in [zoo::fat_tree(4), zoo::jellyfish(12, 3, 5)] {
        let tm = GravityModel::new(600.0, 9).base_matrix(&topo);
        let classes = ClassSet::build(
            &topo,
            &tm,
            &ClassConfig {
                max_classes: 4,
                ..Default::default()
            },
        );
        assert_valid(
            &classes,
            &topo,
            EngineConfig {
                exact: true,
                ..Default::default()
            },
        );
    }
}

#[test]
fn no_consolidation_still_valid() {
    // The raw ceil rounding (consolidation disabled) must also satisfy the
    // formulation — the descent is an optimisation, not a correctness fix.
    let topo = zoo::geant();
    let tm = GravityModel::new(2_500.0, 10).base_matrix(&topo);
    let classes = ClassSet::build(
        &topo,
        &tm,
        &ClassConfig {
            max_classes: 20,
            ..Default::default()
        },
    );
    assert_valid(
        &classes,
        &topo,
        EngineConfig {
            consolidation_attempts: 0,
            ..Default::default()
        },
    );
}
